//! Graphviz (DOT) export for inspection and documentation, and the
//! matching importer.
//!
//! [`parse`] inverts [`to_dot`]: structure and names round-trip exactly,
//! weights to the exporter's three printed decimals. The importer accepts
//! the exporter's dialect — one statement per line, `label` attributes
//! only — not arbitrary Graphviz; rejections are typed ([`DotError`])
//! and carry the offending 1-based line number.

use crate::graph::{GraphBuilder, GraphError, TaskGraph};
use crate::ids::TaskId;

/// Render the graph in Graphviz DOT syntax. Node labels show the task name
/// and execution time; edge labels show the data volume.
pub fn to_dot(g: &TaskGraph) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(64 * g.num_tasks());
    s.push_str("digraph workflow {\n  rankdir=TB;\n  node [shape=box];\n");
    for t in g.tasks() {
        writeln!(s, "  {} [label=\"{} ({:.3})\"];", t.0, g.name(t), g.exec(t)).unwrap();
    }
    for eid in g.edge_ids() {
        let e = g.edge(eid);
        writeln!(
            s,
            "  {} -> {} [label=\"{:.3}\"];",
            e.src.0, e.dst.0, e.volume
        )
        .unwrap();
    }
    s.push_str("}\n");
    s
}

/// Typed rejection from [`parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum DotError {
    /// A line the exporter's dialect does not produce, with the reason.
    Syntax {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was expected there.
        msg: String,
    },
    /// The same node id declared twice.
    DuplicateNode {
        /// 1-based line number of the second declaration.
        line: usize,
        /// The re-declared id.
        id: usize,
    },
    /// Node ids are not dense: some id below the largest declared one
    /// never appears.
    MissingNode {
        /// The absent id.
        id: usize,
    },
    /// The assembled graph is structurally invalid (cycle, self-loop, or
    /// an edge endpoint that is not a node).
    Graph(GraphError),
}

impl std::fmt::Display for DotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Syntax { line, msg } => write!(f, "dot: line {line}: {msg}"),
            Self::DuplicateNode { line, id } => {
                write!(f, "dot: line {line}: node {id} declared twice")
            }
            Self::MissingNode { id } => write!(f, "dot: node {id} is never declared"),
            Self::Graph(e) => write!(f, "dot: {e}"),
        }
    }
}

impl std::error::Error for DotError {}

fn syntax(line: usize, msg: impl Into<String>) -> DotError {
    DotError::Syntax {
        line,
        msg: msg.into(),
    }
}

/// Split a `… [label="…"];` statement into the part before `[` and the
/// unquoted label text.
fn split_label(s: &str, line: usize) -> Result<(&str, &str), DotError> {
    let (head, attr) = s
        .split_once('[')
        .ok_or_else(|| syntax(line, "expected `[label=\"…\"];`"))?;
    let attr = attr
        .trim_end()
        .strip_suffix("];")
        .ok_or_else(|| syntax(line, "statement does not end with `];`"))?;
    let label = attr
        .trim()
        .strip_prefix("label=")
        .ok_or_else(|| syntax(line, "expected a `label` attribute"))?;
    let label = label
        .strip_prefix('"')
        .and_then(|l| l.strip_suffix('"'))
        .ok_or_else(|| syntax(line, "label is not double-quoted"))?;
    Ok((head, label))
}

fn parse_id(s: &str, line: usize, what: &str) -> Result<usize, DotError> {
    s.trim()
        .parse::<usize>()
        .map_err(|_| syntax(line, format!("{what} {:?} is not a task id", s.trim())))
}

fn parse_weight(s: &str, line: usize, what: &str) -> Result<f64, DotError> {
    match s.trim().parse::<f64>() {
        Ok(w) if w.is_finite() => Ok(w),
        _ => Err(syntax(
            line,
            format!("{what} {:?} is not a finite number", s.trim()),
        )),
    }
}

/// Parse a graph from the dialect [`to_dot`] emits.
///
/// Node statements are `<id> [label="<name> (<exec>)"];`, edges
/// `<src> -> <dst> [label="<volume>"];`. Declaration order of nodes is
/// free but ids must be dense; `rankdir`/`node`/`edge`/`graph` attribute
/// lines are ignored. Structural problems (cycles, self-loops, dangling
/// edge endpoints) surface as [`DotError::Graph`].
pub fn parse(text: &str) -> Result<TaskGraph, DotError> {
    let mut nodes: Vec<Option<(String, f64)>> = Vec::new();
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut in_body = false;
    let mut closed = false;
    let mut last = 0;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        last = line;
        let s = raw.trim();
        if s.is_empty() {
            continue;
        }
        if closed {
            return Err(syntax(line, format!("content after closing `}}`: {s:?}")));
        }
        if !in_body {
            let rest = s
                .strip_prefix("digraph")
                .ok_or_else(|| syntax(line, "expected a `digraph <name> {` header"))?;
            if !rest.trim().ends_with('{') {
                return Err(syntax(line, "header is not opened with `{`"));
            }
            in_body = true;
            continue;
        }
        if s == "}" {
            closed = true;
            continue;
        }
        let keyword = s.split(['=', ' ', '[']).next().unwrap_or("");
        if matches!(keyword, "rankdir" | "node" | "edge" | "graph") {
            continue;
        }
        if let Some((src, rest)) = s.split_once("->") {
            let src = parse_id(src, line, "edge source")?;
            let (dst, label) = split_label(rest, line)?;
            let dst = parse_id(dst, line, "edge target")?;
            let volume = parse_weight(label, line, "edge volume")?;
            edges.push((src, dst, volume));
        } else {
            let (id, label) = split_label(s, line)?;
            let id = parse_id(id, line, "node")?;
            let (name, exec) = label
                .rsplit_once(" (")
                .and_then(|(n, e)| Some((n, e.strip_suffix(')')?)))
                .ok_or_else(|| syntax(line, "node label is not `name (exec)`"))?;
            let exec = parse_weight(exec, line, "execution time")?;
            if nodes.len() <= id {
                nodes.resize(id + 1, None);
            }
            if nodes[id].is_some() {
                return Err(DotError::DuplicateNode { line, id });
            }
            nodes[id] = Some((name.to_string(), exec));
        }
    }
    if !in_body {
        return Err(syntax(last.max(1), "expected a `digraph <name> {` header"));
    }
    if !closed {
        return Err(syntax(last, "missing closing `}`"));
    }
    let mut b = GraphBuilder::with_capacity(nodes.len(), edges.len());
    for (id, node) in nodes.into_iter().enumerate() {
        let (name, exec) = node.ok_or(DotError::MissingNode { id })?;
        b.add_named_task(name, exec);
    }
    for (src, dst, volume) in edges {
        // Out-of-range endpoints go through the builder unchecked and are
        // reported by `build` as `GraphError::UnknownTask`.
        b.add_edge(TaskId(src as u32), TaskId(dst as u32), volume);
    }
    b.build().map_err(DotError::Graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_named_task("grab", 1.5);
        let c = b.add_named_task("encode", 2.5);
        b.add_edge(a, c, 3.0);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph workflow {"));
        assert!(dot.contains("grab (1.500)"));
        assert!(dot.contains("encode (2.500)"));
        assert!(dot.contains("0 -> 1 [label=\"3.000\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    /// Weights as the exporter prints them (three decimals).
    fn q(x: f64) -> f64 {
        (x * 1000.0).round() / 1000.0
    }

    #[test]
    fn parse_inverts_export() {
        for g in [
            crate::generate::fig1_diamond(),
            crate::generate::fig2_workflow(),
            crate::generate::fork_join(5, 2.0, 1.5),
        ] {
            let h = parse(&to_dot(&g)).expect("exporter output parses");
            assert_eq!(h.num_tasks(), g.num_tasks());
            assert_eq!(h.num_edges(), g.num_edges());
            for t in g.tasks() {
                assert_eq!(h.name(t), g.name(t));
                assert_eq!(h.exec(t), q(g.exec(t)));
            }
            for id in g.edge_ids() {
                let (a, b) = (g.edge(id), h.edge(id));
                assert_eq!((b.src, b.dst, b.volume), (a.src, a.dst, q(a.volume)));
            }
            // A second round trip is exact: quantization is idempotent.
            assert_eq!(to_dot(&h), to_dot(&parse(&to_dot(&h)).unwrap()));
        }
    }

    #[test]
    fn parse_accepts_free_declaration_order_and_blank_lines() {
        let text = "digraph g {\n\n  1 [label=\"b (2.000)\"];\n  0 [label=\"a (1.000)\"];\n  0 -> 1 [label=\"0.500\"];\n}\n";
        let g = parse(text).unwrap();
        assert_eq!(g.num_tasks(), 2);
        assert_eq!(g.name(TaskId(0)), "a");
        assert_eq!(g.name(TaskId(1)), "b");
    }

    /// One corpus case per rejection class; each asserts the typed
    /// variant and, for syntax errors, the offending line number.
    #[test]
    fn parse_error_corpus() {
        let syntax_case = |text: &str, line: usize, needle: &str| match parse(text) {
            Err(DotError::Syntax { line: l, msg }) => {
                assert_eq!(l, line, "for {text:?}");
                assert!(msg.contains(needle), "{msg:?} misses {needle:?}");
            }
            other => panic!("expected Syntax for {text:?}, got {other:?}"),
        };
        syntax_case("", 1, "digraph");
        syntax_case("graph g {\n}\n", 1, "digraph");
        syntax_case("digraph g\n", 1, "{");
        syntax_case("digraph g {\n  0 [label=\"a (1.000)\"];\n", 2, "closing");
        syntax_case("digraph g {\n}\nextra\n", 3, "after closing");
        syntax_case("digraph g {\n  0;\n}\n", 2, "[label=");
        syntax_case("digraph g {\n  0 [label=\"a (1.000)\"]\n}\n", 2, "`];`");
        syntax_case("digraph g {\n  0 [shape=box];\n}\n", 2, "label");
        syntax_case("digraph g {\n  0 [label=a];\n}\n", 2, "quoted");
        syntax_case("digraph g {\n  0 [label=\"a\"];\n}\n", 2, "name (exec)");
        syntax_case("digraph g {\n  0 [label=\"a (fast)\"];\n}\n", 2, "finite");
        syntax_case("digraph g {\n  x [label=\"a (1.0)\"];\n}\n", 2, "task id");
        syntax_case(
            "digraph g {\n  0 [label=\"a (1.0)\"];\n  0 -> x [label=\"1.0\"];\n}\n",
            3,
            "edge target",
        );
        syntax_case(
            "digraph g {\n  0 [label=\"a (1.0)\"];\n  0 -> 0 [label=\"much\"];\n}\n",
            3,
            "finite",
        );
        match parse("digraph g {\n  0 [label=\"a (1.0)\"];\n  0 [label=\"b (2.0)\"];\n}\n") {
            Err(DotError::DuplicateNode { line: 3, id: 0 }) => {}
            other => panic!("expected DuplicateNode, got {other:?}"),
        }
        match parse("digraph g {\n  1 [label=\"b (2.0)\"];\n}\n") {
            Err(DotError::MissingNode { id: 0 }) => {}
            other => panic!("expected MissingNode, got {other:?}"),
        }
        // Structural rejections flow through the graph builder.
        let dangling = "digraph g {\n  0 [label=\"a (1.0)\"];\n  0 -> 7 [label=\"1.0\"];\n}\n";
        assert!(matches!(
            parse(dangling),
            Err(DotError::Graph(GraphError::UnknownTask(_)))
        ));
        let cyclic = "digraph g {\n  0 [label=\"a (1.0)\"];\n  1 [label=\"b (1.0)\"];\n  0 -> 1 [label=\"1.0\"];\n  1 -> 0 [label=\"1.0\"];\n}\n";
        assert!(matches!(
            parse(cyclic),
            Err(DotError::Graph(GraphError::Cyclic { .. }))
        ));
        let self_loop = "digraph g {\n  0 [label=\"a (1.0)\"];\n  0 -> 0 [label=\"1.0\"];\n}\n";
        assert!(matches!(
            parse(self_loop),
            Err(DotError::Graph(GraphError::SelfLoop(_)))
        ));
    }
}
