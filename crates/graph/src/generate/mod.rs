//! Workload generators.
//!
//! * [`layered()`](layered) — the random layered DAGs used for the paper's evaluation
//!   (§5: "randomly generated graphs, whose parameters are consistent with
//!   those used in the literature").
//! * [`series_parallel()`](series_parallel) — random series-parallel graphs (single
//!   source/sink), the class for which R-LTF's Rule 2 provably reduces the
//!   communication count to `e(ε+1)`.
//! * `standard` — deterministic shapes: pipelines, fork-joins, trees,
//!   the paper's Fig. 1 motivating diamond and the Fig. 2 worked example.
//! * [`apps`] — realistic streaming applications from the paper's
//!   motivating domains: video encoding, FFT/DSP kernels, wavefront
//!   sweeps, map-reduce rounds, and filter banks.

pub mod apps;

mod layered;
mod series_parallel;
mod standard;

pub use layered::{layered, LayeredConfig};
pub use series_parallel::{series_parallel, SeriesParallelConfig};
pub use standard::{
    diamond, fig1_diamond, fig2_task, fig2_workflow, fig2_workflow_variant, fork_join, in_tree,
    out_tree, pipeline,
};
