//! Random layered DAG generator.
//!
//! Mirrors the workload family used in the paper's §5 and the contention-
//! aware fault-tolerant scheduling literature it builds on: `v` tasks spread
//! over `L` layers, edges directed from lower to higher layers (hence
//! acyclic by construction), every non-entry task has at least one
//! predecessor in an earlier layer and every non-exit task at least one
//! successor, plus random extra forward edges up to a target edge count.

use crate::graph::{GraphBuilder, TaskGraph};
use crate::ids::TaskId;
use rand::Rng;

/// Configuration for [`layered`].
#[derive(Debug, Clone)]
pub struct LayeredConfig {
    /// Number of tasks `v`.
    pub tasks: usize,
    /// Number of layers; `None` chooses `max(2, round(sqrt(v) * 1.2))`,
    /// which yields depths of 8–15 for the paper's 50–150-task graphs.
    pub layers: Option<usize>,
    /// Target edge count; `None` chooses `2 v` (literature-typical density).
    pub target_edges: Option<usize>,
    /// Probability that an extra edge skips exactly one layer.
    pub skip_layer_prob: f64,
    /// Task execution times drawn uniformly from this range.
    pub exec_range: (f64, f64),
    /// Edge data volumes drawn uniformly from this range (paper: `[50, 150]`).
    pub volume_range: (f64, f64),
}

impl Default for LayeredConfig {
    fn default() -> Self {
        Self {
            tasks: 100,
            layers: None,
            target_edges: None,
            skip_layer_prob: 0.15,
            exec_range: (50.0, 150.0),
            volume_range: (50.0, 150.0),
        }
    }
}

impl LayeredConfig {
    /// Convenience constructor fixing only the task count.
    pub fn with_tasks(tasks: usize) -> Self {
        Self {
            tasks,
            ..Self::default()
        }
    }
}

/// Generate a random layered DAG. Deterministic given `rng` state.
///
/// # Panics
/// If `cfg.tasks == 0` or a weight range is empty/invalid.
pub fn layered<R: Rng>(cfg: &LayeredConfig, rng: &mut R) -> TaskGraph {
    let v = cfg.tasks;
    assert!(v > 0, "need at least one task");
    let n_layers = cfg
        .layers
        .unwrap_or_else(|| ((v as f64).sqrt() * 1.2).round().max(2.0) as usize)
        .clamp(1, v);
    let target_edges = cfg.target_edges.unwrap_or(2 * v);

    let mut b = GraphBuilder::with_capacity(v, target_edges);
    let sample = |rng: &mut R, (lo, hi): (f64, f64)| -> f64 {
        assert!(lo <= hi && lo >= 0.0, "invalid weight range");
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..hi)
        }
    };

    // Assign every task a layer; force each layer to be non-empty by seeding
    // one task per layer, then distribute the rest uniformly.
    let mut layer_of: Vec<usize> = Vec::with_capacity(v);
    for l in 0..n_layers.min(v) {
        layer_of.push(l);
    }
    for _ in n_layers..v {
        layer_of.push(rng.gen_range(0..n_layers));
    }
    // Shuffle so task ids are not correlated with layers.
    for i in (1..layer_of.len()).rev() {
        let j = rng.gen_range(0..=i);
        layer_of.swap(i, j);
    }

    let tasks: Vec<TaskId> = (0..v)
        .map(|_| b.add_task(sample(rng, cfg.exec_range)))
        .collect();
    let mut by_layer: Vec<Vec<TaskId>> = vec![Vec::new(); n_layers];
    for (i, &l) in layer_of.iter().enumerate() {
        by_layer[l].push(tasks[i]);
    }
    // Drop empty trailing layers (possible when v < n_layers).
    by_layer.retain(|l| !l.is_empty());
    let n_layers = by_layer.len();

    let mut edge_set = std::collections::HashSet::new();
    let add_edge = |b: &mut GraphBuilder,
                    rng: &mut R,
                    src: TaskId,
                    dst: TaskId,
                    edge_set: &mut std::collections::HashSet<(TaskId, TaskId)>|
     -> bool {
        if src == dst || !edge_set.insert((src, dst)) {
            return false;
        }
        let vol = sample(rng, cfg.volume_range);
        b.add_edge(src, dst, vol);
        true
    };

    // Connectivity: every task in layer k>0 receives from layer k-1; every
    // task in layer k<last sends somewhere ahead.
    for k in 1..n_layers {
        for i in 0..by_layer[k].len() {
            let dst = by_layer[k][i];
            let src = by_layer[k - 1][rng.gen_range(0..by_layer[k - 1].len())];
            add_edge(&mut b, rng, src, dst, &mut edge_set);
        }
    }
    for k in 0..n_layers.saturating_sub(1) {
        for i in 0..by_layer[k].len() {
            let src = by_layer[k][i];
            if edge_set.iter().any(|&(s, _)| s == src) {
                continue;
            }
            let dst = by_layer[k + 1][rng.gen_range(0..by_layer[k + 1].len())];
            add_edge(&mut b, rng, src, dst, &mut edge_set);
        }
    }

    // Extra random forward edges up to the target density.
    let mut attempts = 0usize;
    let max_attempts = target_edges * 20 + 100;
    while edge_set.len() < target_edges && attempts < max_attempts && n_layers > 1 {
        attempts += 1;
        let k = rng.gen_range(0..n_layers - 1);
        let stride = if rng.gen_bool(cfg.skip_layer_prob) && k + 2 < n_layers {
            2
        } else {
            1
        };
        let src = by_layer[k][rng.gen_range(0..by_layer[k].len())];
        let dst = by_layer[k + stride][rng.gen_range(0..by_layer[k + stride].len())];
        add_edge(&mut b, rng, src, dst, &mut edge_set);
    }

    b.build().expect("layered construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::depth;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_task_count_and_ranges() {
        let cfg = LayeredConfig {
            tasks: 80,
            exec_range: (50.0, 150.0),
            volume_range: (50.0, 150.0),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let g = layered(&cfg, &mut rng);
        assert_eq!(g.num_tasks(), 80);
        for t in g.tasks() {
            assert!((50.0..150.0).contains(&g.exec(t)));
        }
        for e in g.edge_ids() {
            let vol = g.edge(e).volume;
            assert!((50.0..150.0).contains(&vol));
        }
    }

    #[test]
    fn edge_density_near_target() {
        let cfg = LayeredConfig::with_tasks(100);
        let mut rng = StdRng::seed_from_u64(7);
        let g = layered(&cfg, &mut rng);
        // Target is 2v; generator should get close (within 25%).
        assert!(g.num_edges() >= 150, "too sparse: {}", g.num_edges());
        assert!(g.num_edges() <= 220, "too dense: {}", g.num_edges());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = LayeredConfig::with_tasks(60);
        let g1 = layered(&cfg, &mut StdRng::seed_from_u64(99));
        let g2 = layered(&cfg, &mut StdRng::seed_from_u64(99));
        assert_eq!(g1.num_edges(), g2.num_edges());
        for (a, b) in g1.edge_ids().zip(g2.edge_ids()) {
            assert_eq!(g1.edge(a).src, g2.edge(b).src);
            assert_eq!(g1.edge(a).dst, g2.edge(b).dst);
            assert_eq!(g1.edge(a).volume, g2.edge(b).volume);
        }
    }

    #[test]
    fn depth_matches_layer_budget() {
        let cfg = LayeredConfig {
            tasks: 100,
            layers: Some(10),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let g = layered(&cfg, &mut rng);
        assert!(depth(&g) <= 10, "depth {} exceeds layers", depth(&g));
        assert!(depth(&g) >= 5, "depth {} suspiciously small", depth(&g));
    }

    #[test]
    fn tiny_graphs() {
        let cfg = LayeredConfig {
            tasks: 1,
            ..Default::default()
        };
        let g = layered(&cfg, &mut StdRng::seed_from_u64(0));
        assert_eq!(g.num_tasks(), 1);
        assert_eq!(g.num_edges(), 0);

        let cfg = LayeredConfig {
            tasks: 2,
            layers: Some(2),
            ..Default::default()
        };
        let g = layered(&cfg, &mut StdRng::seed_from_u64(0));
        assert_eq!(g.num_tasks(), 2);
        assert!(g.num_edges() >= 1);
    }

    #[test]
    fn every_middle_task_connected() {
        let cfg = LayeredConfig::with_tasks(120);
        let g = layered(&cfg, &mut StdRng::seed_from_u64(11));
        for t in g.tasks() {
            // No isolated tasks (a task is entry, exit, or internal, but
            // never disconnected on both sides unless single-layer).
            assert!(
                g.in_degree(t) > 0 || g.out_degree(t) > 0,
                "task {t} isolated"
            );
        }
    }
}
