//! Realistic streaming-application graphs.
//!
//! The paper motivates pipelined workflows with "video and audio encoding
//! and decoding, DSP applications" (§1). These parameterized generators
//! build the classic dataflow shapes of that domain with plausible
//! relative costs, for use in examples, tests and benchmarks. All weights
//! are in abstract time/volume units and scale with the parameters.

use crate::graph::{GraphBuilder, TaskGraph};
use crate::ids::TaskId;

/// An H.264-flavoured video encoder: per-frame slices are motion-estimated
/// against the previous reconstructed frame, transformed and entropy-coded,
/// then assembled into a bitstream task per frame.
///
/// Structure per frame `f` with `slices` slices:
/// `split(f) → {me(f,s) → dct(f,s) → cabac(f,s)} → assemble(f)`, plus the
/// inter-frame dependencies `assemble(f) → me(f+1, s)` (reference frame)
/// and `split(f) → split(f+1)` (capture order).
pub fn video_encoder(frames: usize, slices: usize) -> TaskGraph {
    assert!(frames >= 1 && slices >= 1);
    let mut b = GraphBuilder::with_capacity(frames * (2 + 3 * slices), frames * (4 * slices + 2));
    let mut prev_assemble: Option<TaskId> = None;
    let mut prev_split: Option<TaskId> = None;
    for f in 0..frames {
        let split = b.add_named_task(format!("split[{f}]"), 2.0);
        if let Some(ps) = prev_split {
            b.add_edge(ps, split, 0.5); // capture order
        }
        prev_split = Some(split);
        let assemble = b.add_named_task(format!("assemble[{f}]"), 3.0);
        for s in 0..slices {
            let me = b.add_named_task(format!("me[{f},{s}]"), 10.0);
            let dct = b.add_named_task(format!("dct[{f},{s}]"), 6.0);
            let cabac = b.add_named_task(format!("cabac[{f},{s}]"), 4.0);
            b.add_edge(split, me, 8.0); // raw slice
            if let Some(prev) = prev_assemble {
                b.add_edge(prev, me, 2.0); // reference frame fragment
            }
            b.add_edge(me, dct, 4.0);
            b.add_edge(dct, cabac, 3.0);
            b.add_edge(cabac, assemble, 1.0);
        }
        prev_assemble = Some(assemble);
    }
    b.build().expect("encoder graph is acyclic")
}

/// A radix-2 FFT dataflow of `2^log2n` points: `log2n` butterfly ranks of
/// `2^(log2n-1)` butterflies each, plus bit-reversal input and output
/// gather tasks. A classic DSP kernel with heavy all-to-all-ish traffic.
pub fn fft(log2n: u32) -> TaskGraph {
    assert!((1..=8).contains(&log2n), "supported sizes: 2^1..2^8");
    let n = 1usize << log2n;
    let half = n / 2;
    let mut b = GraphBuilder::new();
    let input = b.add_named_task("bitrev", 1.0);
    // ranks[r][i] = butterfly i of rank r.
    let mut prev: Vec<TaskId> = Vec::new();
    for r in 0..log2n {
        let mut cur = Vec::with_capacity(half);
        for i in 0..half {
            let t = b.add_named_task(format!("bfly[{r},{i}]"), 2.0);
            cur.push(t);
        }
        if r == 0 {
            for &t in &cur {
                b.add_edge(input, t, 2.0);
            }
        } else {
            // Butterfly i at rank r consumes the outputs of butterflies i
            // and i ⊕ stride of the previous rank (stride = 2^(r−1) < n/2,
            // so the two sources are always distinct).
            let stride = 1usize << (r - 1);
            for (i, &t) in cur.iter().enumerate() {
                let lo = prev[i];
                let hi = prev[(i + stride) % half];
                b.add_edge(lo, t, 1.0);
                if hi != lo {
                    b.add_edge(hi, t, 1.0);
                }
            }
        }
        prev = cur;
    }
    let output = b.add_named_task("gather", 1.0);
    for &t in &prev {
        b.add_edge(t, output, 2.0);
    }
    b.build().expect("FFT dataflow is acyclic")
}

/// A wavefront/stencil sweep over a `width × steps` grid: cell `(i, j)`
/// depends on `(i−1, j)` and `(i, j−1)` — the dependency pattern of
/// dynamic programming and LU-style kernels.
pub fn wavefront(width: usize, steps: usize) -> TaskGraph {
    assert!(width >= 1 && steps >= 1);
    let mut b = GraphBuilder::with_capacity(width * steps, 2 * width * steps);
    let mut grid = vec![vec![TaskId(0); width]; steps];
    for (j, row) in grid.iter_mut().enumerate() {
        for (i, cell) in row.iter_mut().enumerate() {
            *cell = b.add_named_task(format!("cell[{i},{j}]"), 3.0);
        }
    }
    for j in 0..steps {
        for i in 0..width {
            if i > 0 {
                b.add_edge(grid[j][i - 1], grid[j][i], 1.0);
            }
            if j > 0 {
                b.add_edge(grid[j - 1][i], grid[j][i], 1.0);
            }
        }
    }
    b.build().expect("wavefront is acyclic")
}

/// A map-shuffle-reduce round: `splitter → mappers → reducers → merger`,
/// with the all-to-all shuffle between mappers and reducers that stresses
/// the one-port model.
pub fn mapreduce(mappers: usize, reducers: usize) -> TaskGraph {
    assert!(mappers >= 1 && reducers >= 1);
    let mut b = GraphBuilder::with_capacity(
        mappers + reducers + 2,
        mappers + mappers * reducers + reducers,
    );
    let split = b.add_named_task("split", 2.0);
    let maps: Vec<TaskId> = (0..mappers)
        .map(|i| b.add_named_task(format!("map[{i}]"), 8.0))
        .collect();
    let reds: Vec<TaskId> = (0..reducers)
        .map(|i| b.add_named_task(format!("reduce[{i}]"), 6.0))
        .collect();
    let merge = b.add_named_task("merge", 2.0);
    for &m in &maps {
        b.add_edge(split, m, 4.0);
        for &r in &reds {
            b.add_edge(m, r, 1.0); // shuffle fragment
        }
    }
    for &r in &reds {
        b.add_edge(r, merge, 2.0);
    }
    b.build().expect("mapreduce is acyclic")
}

/// A DSP analysis/synthesis filter bank: a polyphase split into `channels`
/// sub-bands, independent per-channel chains of `depth` biquad stages, and
/// a synthesis recombination — audio codecs and software radio in shape.
pub fn filter_bank(channels: usize, depth: usize) -> TaskGraph {
    assert!(channels >= 1 && depth >= 1);
    let mut b = GraphBuilder::with_capacity(channels * depth + 2, channels * (depth + 1));
    let analysis = b.add_named_task("analysis", 4.0);
    let synthesis = b.add_named_task("synthesis", 4.0);
    for c in 0..channels {
        let mut prev = analysis;
        for d in 0..depth {
            let t = b.add_named_task(format!("biquad[{c},{d}]"), 3.0);
            b.add_edge(prev, t, if d == 0 { 2.0 } else { 1.0 });
            prev = t;
        }
        b.add_edge(prev, synthesis, 2.0);
    }
    b.build().expect("filter bank is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::depth;
    use crate::width;

    #[test]
    fn video_encoder_shape() {
        let g = video_encoder(3, 4);
        assert_eq!(g.num_tasks(), 3 * (2 + 3 * 4));
        // One entry (first split) reachable to everything; one exit (last
        // assemble) plus possibly none else.
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.exits().len(), 1);
        // Inter-frame dependency chains frames serially.
        assert!(depth(&g) >= 3 * 4);
    }

    #[test]
    fn video_encoder_single_frame() {
        let g = video_encoder(1, 2);
        assert_eq!(g.num_tasks(), 8);
        assert_eq!(width(&g), 2);
    }

    #[test]
    fn fft_shape() {
        let g = fft(3); // 8-point FFT
                        // 1 + 3 ranks × 4 butterflies + 1 = 14 tasks.
        assert_eq!(g.num_tasks(), 14);
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.exits().len(), 1);
        assert_eq!(depth(&g), 5); // bitrev + 3 ranks + gather
        assert_eq!(width(&g), 4);
    }

    #[test]
    fn wavefront_shape() {
        let g = wavefront(4, 3);
        assert_eq!(g.num_tasks(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 4 * 2); // horizontal + vertical
                                                  // Single entry (0,0), single exit (3,2).
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.exits().len(), 1);
        // Anti-diagonal width.
        assert_eq!(width(&g), 3); // min(rows, cols) anti-diagonal
        assert_eq!(depth(&g), 4 + 3 - 1);
    }

    #[test]
    fn mapreduce_shape() {
        let g = mapreduce(5, 3);
        assert_eq!(g.num_tasks(), 10);
        assert_eq!(g.num_edges(), 5 + 15 + 3);
        assert_eq!(width(&g), 5);
        assert_eq!(depth(&g), 4);
    }

    #[test]
    fn filter_bank_shape() {
        let g = filter_bank(6, 3);
        assert_eq!(g.num_tasks(), 6 * 3 + 2);
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.exits().len(), 1);
        assert_eq!(width(&g), 6);
        assert_eq!(depth(&g), 5);
    }
}
