//! Random series-parallel (SP) DAG generator.
//!
//! SP graphs (single source, single sink, built by recursive series and
//! parallel compositions) are the class for which the paper notes that
//! R-LTF's Rule 2, absent throughput constraints, reduces the number of
//! replica communications to `e(ε+1)`. We generate them by repeatedly
//! expanding a random edge: a *series* expansion splits `u → w` into
//! `u → x → w`; a *parallel* expansion adds a fresh branch `u → x → w`.

use crate::graph::{GraphBuilder, TaskGraph};
use rand::Rng;

/// Configuration for [`series_parallel`].
#[derive(Debug, Clone)]
pub struct SeriesParallelConfig {
    /// Total number of tasks (≥ 2: source and sink).
    pub tasks: usize,
    /// Probability of a *series* expansion (vs parallel) at each step.
    pub series_prob: f64,
    /// Task execution times drawn uniformly from this range.
    pub exec_range: (f64, f64),
    /// Edge data volumes drawn uniformly from this range.
    pub volume_range: (f64, f64),
}

impl Default for SeriesParallelConfig {
    fn default() -> Self {
        Self {
            tasks: 50,
            series_prob: 0.6,
            exec_range: (50.0, 150.0),
            volume_range: (50.0, 150.0),
        }
    }
}

/// Generate a random series-parallel DAG with a single source and sink.
pub fn series_parallel<R: Rng>(cfg: &SeriesParallelConfig, rng: &mut R) -> TaskGraph {
    assert!(cfg.tasks >= 2, "SP graph needs source and sink");
    let sample = |rng: &mut R, (lo, hi): (f64, f64)| -> f64 {
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..hi)
        }
    };

    // Work on a mutable edge list of (src, dst) using local indices; weights
    // drawn at the end so that edge insertion order does not skew them.
    let mut exec: Vec<f64> = vec![sample(rng, cfg.exec_range), sample(rng, cfg.exec_range)];
    let mut edges: Vec<(usize, usize)> = vec![(0, 1)];

    while exec.len() < cfg.tasks {
        let pick = rng.gen_range(0..edges.len());
        let (u, w) = edges[pick];
        let x = exec.len();
        exec.push(sample(rng, cfg.exec_range));
        if rng.gen_bool(cfg.series_prob) {
            // Series: u -> x -> w replaces u -> w.
            edges[pick] = (u, x);
            edges.push((x, w));
        } else {
            // Parallel: add u -> x -> w alongside u -> w.
            edges.push((u, x));
            edges.push((x, w));
        }
    }

    let mut b = GraphBuilder::with_capacity(exec.len(), edges.len());
    let ids: Vec<_> = exec.iter().map(|&e| b.add_task(e)).collect();
    let mut seen = std::collections::HashSet::new();
    for &(u, w) in &edges {
        if seen.insert((u, w)) {
            b.add_edge(ids[u], ids[w], sample(rng, cfg.volume_range));
        }
    }
    b.build().expect("SP construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_source_and_sink() {
        let cfg = SeriesParallelConfig {
            tasks: 40,
            ..Default::default()
        };
        for seed in 0..10 {
            let g = series_parallel(&cfg, &mut StdRng::seed_from_u64(seed));
            assert_eq!(g.num_tasks(), 40);
            assert_eq!(g.entries().len(), 1, "seed {seed}: multiple sources");
            assert_eq!(g.exits().len(), 1, "seed {seed}: multiple sinks");
        }
    }

    #[test]
    fn minimal_sp() {
        let cfg = SeriesParallelConfig {
            tasks: 2,
            ..Default::default()
        };
        let g = series_parallel(&cfg, &mut StdRng::seed_from_u64(0));
        assert_eq!(g.num_tasks(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn pure_series_is_a_chain() {
        let cfg = SeriesParallelConfig {
            tasks: 10,
            series_prob: 1.0,
            ..Default::default()
        };
        let g = series_parallel(&cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(g.num_edges(), 9);
        assert_eq!(crate::width(&g), 1);
    }

    #[test]
    fn pure_parallel_is_a_fork_join() {
        let cfg = SeriesParallelConfig {
            tasks: 8,
            series_prob: 0.0,
            ..Default::default()
        };
        let g = series_parallel(&cfg, &mut StdRng::seed_from_u64(5));
        // Expansions may nest (a parallel branch can itself be expanded),
        // so the exact width varies; but with no series steps some pair of
        // middles must be independent.
        let w = crate::width(&g);
        assert!((2..=6).contains(&w), "width {w} out of range");
    }

    #[test]
    fn weights_in_range() {
        let cfg = SeriesParallelConfig {
            tasks: 30,
            exec_range: (10.0, 20.0),
            volume_range: (1.0, 2.0),
            ..Default::default()
        };
        let g = series_parallel(&cfg, &mut StdRng::seed_from_u64(9));
        for t in g.tasks() {
            assert!((10.0..20.0).contains(&g.exec(t)));
        }
        for e in g.edge_ids() {
            assert!((1.0..2.0).contains(&g.edge(e).volume));
        }
    }
}
