//! Deterministic standard graph shapes, including the paper's examples.

use crate::graph::{GraphBuilder, TaskGraph};
use crate::ids::TaskId;

/// Linear pipeline of `n` tasks: `t0 → t1 → … → t(n-1)`, uniform weights.
pub fn pipeline(n: usize, exec: f64, volume: f64) -> TaskGraph {
    assert!(n >= 1);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    let ts: Vec<_> = (0..n).map(|_| b.add_task(exec)).collect();
    for w in ts.windows(2) {
        b.add_edge(w[0], w[1], volume);
    }
    b.build().expect("pipeline is acyclic")
}

/// Fork-join: source → `branches` parallel tasks → sink, uniform weights.
pub fn fork_join(branches: usize, exec: f64, volume: f64) -> TaskGraph {
    assert!(branches >= 1);
    let mut b = GraphBuilder::with_capacity(branches + 2, 2 * branches);
    let s = b.add_named_task("fork", exec);
    let mids: Vec<_> = (0..branches).map(|_| b.add_task(exec)).collect();
    let t = b.add_named_task("join", exec);
    for &m in &mids {
        b.add_edge(s, m, volume);
        b.add_edge(m, t, volume);
    }
    b.build().expect("fork-join is acyclic")
}

/// Four-task diamond `t1 → {t2, t3} → t4` with uniform weights.
pub fn diamond(exec: f64, volume: f64) -> TaskGraph {
    let mut b = GraphBuilder::with_capacity(4, 4);
    let t1 = b.add_named_task("t1", exec);
    let t2 = b.add_named_task("t2", exec);
    let t3 = b.add_named_task("t3", exec);
    let t4 = b.add_named_task("t4", exec);
    b.add_edge(t1, t2, volume);
    b.add_edge(t1, t3, volume);
    b.add_edge(t2, t4, volume);
    b.add_edge(t3, t4, volume);
    b.build().expect("diamond is acyclic")
}

/// Complete in-tree (reduction tree) of the given `depth` and `arity`:
/// leaves feed towards a single root exit.
pub fn in_tree(depth: usize, arity: usize, exec: f64, volume: f64) -> TaskGraph {
    out_tree(depth, arity, exec, volume).reversed()
}

/// Complete out-tree (broadcast tree) of the given `depth` and `arity`:
/// a single entry root fans out to `arity^depth` leaves.
pub fn out_tree(depth: usize, arity: usize, exec: f64, volume: f64) -> TaskGraph {
    assert!(arity >= 1);
    let mut b = GraphBuilder::new();
    let root = b.add_task(exec);
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * arity);
        for &p in &frontier {
            for _ in 0..arity {
                let c = b.add_task(exec);
                b.add_edge(p, c, volume);
                next.push(c);
            }
        }
        frontier = next;
    }
    b.build().expect("tree is acyclic")
}

/// The motivating example of the paper's §1 (Fig. 1a): a four-task diamond
/// with all execution times 15 and all edge volumes 2. Meant to be paired
/// with the 4-processor platform `s = [1.5, 1, 1.5, 1]` and unit bandwidth
/// (`ltf-platform::Platform::fig1_platform`).
pub fn fig1_diamond() -> TaskGraph {
    diamond(15.0, 2.0)
}

/// Task ids of [`fig2_workflow`] in the paper's numbering `t1..t7`
/// (index 0 is `t1`).
pub fn fig2_task(i: usize) -> TaskId {
    assert!((1..=7).contains(&i), "fig. 2 tasks are t1..t7");
    TaskId(i as u32 - 1)
}

/// Reconstruction of the worked example of §4.3 (Fig. 2a).
///
/// The report's figure graphics are not recoverable from the archived text;
/// the edge structure below is pinned down by the scheduling traces (see
/// DESIGN.md §2.10): `t1→{t2,t3}`, `t2→{t4,t5}`, `{t4,t5}→t6`, `{t3,t6}→t7`,
/// execution times `E(t1)=E(t7)=15, E(t3)=20, E(t2)=E(t6)=6, E(t4)=E(t5)=5`,
/// all edge volumes 2 (unit-bandwidth links make the communication time 2).
pub fn fig2_workflow() -> TaskGraph {
    fig2_with_t2_exec(6.0)
}

/// Variant of [`fig2_workflow`] with `E(t2) = 3`, for which the paper's
/// exact claims hold end-to-end on the reconstruction: R-LTF packs the
/// stage-2 cluster `{t2, t4, t5, t6}` (load 19 ≤ Δ = 20) and reaches 3
/// pipeline stages / latency 100 on 8 processors, while LTF's
/// finish-time-greedy placement needs more processors and more stages.
pub fn fig2_workflow_variant() -> TaskGraph {
    fig2_with_t2_exec(3.0)
}

fn fig2_with_t2_exec(e_t2: f64) -> TaskGraph {
    let mut b = GraphBuilder::with_capacity(7, 8);
    let t1 = b.add_named_task("t1", 15.0);
    let t2 = b.add_named_task("t2", e_t2);
    let t3 = b.add_named_task("t3", 20.0);
    let t4 = b.add_named_task("t4", 5.0);
    let t5 = b.add_named_task("t5", 5.0);
    let t6 = b.add_named_task("t6", 6.0);
    let t7 = b.add_named_task("t7", 15.0);
    let vol = 2.0;
    b.add_edge(t1, t2, vol);
    b.add_edge(t1, t3, vol);
    b.add_edge(t2, t4, vol);
    b.add_edge(t2, t5, vol);
    b.add_edge(t4, t6, vol);
    b.add_edge(t5, t6, vol);
    b.add_edge(t3, t7, vol);
    b.add_edge(t6, t7, vol);
    b.build().expect("fig. 2 graph is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::{depth, priorities, Weights};
    use crate::width;

    #[test]
    fn pipeline_shape() {
        let g = pipeline(5, 1.0, 2.0);
        assert_eq!(g.num_tasks(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(width(&g), 1);
        assert_eq!(depth(&g), 5);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(6, 1.0, 1.0);
        assert_eq!(g.num_tasks(), 8);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(width(&g), 6);
        assert_eq!(depth(&g), 3);
    }

    #[test]
    fn out_tree_shape() {
        let g = out_tree(3, 2, 1.0, 1.0);
        assert_eq!(g.num_tasks(), 15);
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.exits().len(), 8);
        assert_eq!(width(&g), 8);
    }

    #[test]
    fn in_tree_shape() {
        let g = in_tree(3, 2, 1.0, 1.0);
        assert_eq!(g.num_tasks(), 15);
        assert_eq!(g.entries().len(), 8);
        assert_eq!(g.exits().len(), 1);
    }

    #[test]
    fn fig1_shape() {
        let g = fig1_diamond();
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.total_exec(), 60.0);
        assert!(g.tasks().all(|t| g.exec(t) == 15.0));
        assert!(g.edge_ids().all(|e| g.edge(e).volume == 2.0));
    }

    #[test]
    fn fig2_shape() {
        let g = fig2_workflow();
        assert_eq!(g.num_tasks(), 7);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.exec(fig2_task(1)), 15.0);
        assert_eq!(g.exec(fig2_task(3)), 20.0);
        assert_eq!(g.exec(fig2_task(6)), 6.0);
        assert_eq!(g.total_exec(), 72.0);
        // t1 entry, t7 exit.
        assert_eq!(g.entries(), &[fig2_task(1)]);
        assert_eq!(g.exits(), &[fig2_task(7)]);
        // Ready-order sanity: t2, t3 become ready after t1.
        assert!(g.has_edge(fig2_task(1), fig2_task(2)));
        assert!(g.has_edge(fig2_task(6), fig2_task(7)));
        assert_eq!(depth(&g), 5);
    }

    #[test]
    fn fig2_t3_has_top_priority_among_level2() {
        // The paper's trace selects t3 before t2 at step 2 (priority 54 vs
        // 53); with the reconstruction, t3's path must dominate t2's.
        let g = fig2_workflow();
        let w = Weights::from_unit_speeds(&g);
        let pr = priorities(&g, &w);
        assert!(pr[fig2_task(3).index()] >= pr[fig2_task(2).index()] - 1.0);
    }

    #[test]
    fn fig2_variant_cluster_fits_period() {
        let g = fig2_workflow_variant();
        let cluster = [fig2_task(2), fig2_task(4), fig2_task(5), fig2_task(6)];
        let load: f64 = cluster.iter().map(|&t| g.exec(t)).sum();
        assert!(load <= 20.0, "stage-2 cluster load {load} exceeds Δ=20");
    }
}
