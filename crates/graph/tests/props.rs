//! Property-based tests on the DAG model.

use ltf_graph::generate::{layered, series_parallel, LayeredConfig, SeriesParallelConfig};
use ltf_graph::levels::{bottom_levels, depth, layering, top_levels};
use ltf_graph::traversal::{ancestors, descendants, ReadyTracker};
use ltf_graph::width::{independent, transitive_closure};
use ltf_graph::{width, GraphBuilder, TaskGraph, TaskId, Weights};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: random DAG by sampling forward edges over `0..n` (edges only
/// from lower to higher id, hence acyclic).
fn arb_dag() -> impl Strategy<Value = TaskGraph> {
    (2usize..24, any::<u64>()).prop_map(|(n, seed)| {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let ids: Vec<TaskId> = (0..n)
            .map(|_| b.add_task(rng.gen_range(0.5..4.0)))
            .collect();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.25) {
                    b.add_edge(ids[i], ids[j], rng.gen_range(0.1..3.0));
                }
            }
        }
        b.build().expect("forward edges are acyclic")
    })
}

/// Strategy: generator-made graphs (layered and series-parallel).
fn arb_generated() -> impl Strategy<Value = TaskGraph> {
    (4usize..60, any::<u64>(), any::<bool>()).prop_map(|(n, seed, sp)| {
        let mut rng = StdRng::seed_from_u64(seed);
        if sp {
            series_parallel(
                &SeriesParallelConfig {
                    tasks: n.max(2),
                    ..Default::default()
                },
                &mut rng,
            )
        } else {
            layered(&LayeredConfig::with_tasks(n), &mut rng)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topo_order_is_consistent(g in arb_dag()) {
        let mut seen = vec![false; g.num_tasks()];
        for &t in g.topo_order() {
            for p in g.preds(t) {
                prop_assert!(seen[p.index()], "pred after successor");
            }
            seen[t.index()] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn levels_grow_along_edges(g in arb_dag()) {
        let w = Weights::from_unit_speeds(&g);
        let tl = top_levels(&g, &w);
        let bl = bottom_levels(&g, &w);
        for eid in g.edge_ids() {
            let e = g.edge(eid);
            // tℓ(dst) ≥ tℓ(src) + E(src) + vol(e).
            prop_assert!(tl[e.dst.index()] + 1e-9 >=
                tl[e.src.index()] + g.exec(e.src) + e.volume);
            // bℓ(src) ≥ vol(e) + bℓ(dst) + own exec − …
            prop_assert!(bl[e.src.index()] + 1e-9 >=
                g.exec(e.src) + e.volume + bl[e.dst.index()]);
        }
        // Bottom level of any task at least its own execution time.
        for t in g.tasks() {
            prop_assert!(bl[t.index()] + 1e-12 >= g.exec(t));
        }
    }

    #[test]
    fn reversal_is_involutive(g in arb_generated()) {
        let rr = g.reversed().reversed();
        prop_assert_eq!(rr.num_tasks(), g.num_tasks());
        prop_assert_eq!(rr.num_edges(), g.num_edges());
        for eid in g.edge_ids() {
            prop_assert_eq!(rr.edge(eid).src, g.edge(eid).src);
            prop_assert_eq!(rr.edge(eid).dst, g.edge(eid).dst);
        }
        // Levels swap roles under reversal.
        let w = Weights::from_unit_speeds(&g);
        let rev = g.reversed();
        let wr = Weights::from_unit_speeds(&rev);
        let bl = bottom_levels(&g, &w);
        let tl_rev = top_levels(&rev, &wr);
        for t in g.tasks() {
            // bℓ(t) = tℓ_rev(t) + E(t).
            prop_assert!((bl[t.index()] - tl_rev[t.index()] - g.exec(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn width_bounds_and_witness(g in arb_dag()) {
        let w = width(&g);
        prop_assert!(w >= 1 && w <= g.num_tasks());
        // Width at least the largest layer (layers are antichains... layers
        // from longest-path layering need not be antichains in general, but
        // entry set is one).
        let entries = g.entries().len();
        prop_assert!(w >= entries.min(g.num_tasks()));
        // Chains bound: width 1 implies a total order.
        if w == 1 {
            let c = transitive_closure(&g);
            for a in g.tasks() {
                for b in g.tasks() {
                    if a != b {
                        prop_assert!(!independent(&c, a, b));
                    }
                }
            }
        }
    }

    #[test]
    fn ready_tracker_consumes_topologically(g in arb_generated()) {
        let mut rt = ReadyTracker::new(&g);
        let order = g.topo_order().to_vec();
        for &t in &order {
            prop_assert!(rt.is_ready(t));
            rt.complete(&g, t);
        }
        prop_assert!(rt.all_done(&g));
    }

    #[test]
    fn ancestors_descendants_are_dual(g in arb_dag()) {
        for t in g.tasks() {
            for a in ancestors(&g, t) {
                prop_assert!(descendants(&g, a).contains(&t));
            }
        }
    }

    #[test]
    fn depth_consistent_with_layering(g in arb_generated()) {
        let l = layering(&g);
        let d = depth(&g);
        prop_assert_eq!(d, l.iter().max().unwrap() + 1);
    }

    /// Shape invariants of the `fork_join` generator, for any size and
    /// weights: counts, the unique entry/exit, per-branch degrees, depth,
    /// and the weight totals its uniform parameters imply.
    #[test]
    fn fork_join_shape_invariants(
        branches in 1usize..48,
        exec in 0.1f64..20.0,
        volume in 0.1f64..20.0,
    ) {
        let g = ltf_graph::generate::fork_join(branches, exec, volume);
        prop_assert_eq!(g.num_tasks(), branches + 2);
        prop_assert_eq!(g.num_edges(), 2 * branches);
        prop_assert_eq!(g.entries().len(), 1);
        prop_assert_eq!(g.exits().len(), 1);
        let (fork, join) = (g.entries()[0], g.exits()[0]);
        prop_assert_eq!(g.name(fork), "fork");
        prop_assert_eq!(g.name(join), "join");
        prop_assert_eq!(g.out_degree(fork), branches);
        prop_assert_eq!(g.in_degree(join), branches);
        for t in g.tasks() {
            prop_assert_eq!(g.exec(t), exec);
            if t != fork && t != join {
                prop_assert_eq!((g.in_degree(t), g.out_degree(t)), (1, 1));
                prop_assert!(g.has_edge(fork, t) && g.has_edge(t, join));
            }
        }
        prop_assert_eq!(depth(&g), 3);
        prop_assert!((g.total_exec() - exec * (branches + 2) as f64).abs() < 1e-9 * g.total_exec());
        prop_assert!((g.total_volume() - volume * (2 * branches) as f64).abs()
            < 1e-9 * (1.0 + g.total_volume()));
    }

    /// Shape invariants of the `wavefront` grid generator: cell count,
    /// interior-edge count, the unique corner entry/exit, per-cell degrees
    /// determined by grid position, and the anti-diagonal depth.
    #[test]
    fn wavefront_shape_invariants(width in 1usize..14, steps in 1usize..14) {
        let g = ltf_graph::generate::apps::wavefront(width, steps);
        prop_assert_eq!(g.num_tasks(), width * steps);
        prop_assert_eq!(g.num_edges(), steps * (width - 1) + width * (steps - 1));
        prop_assert_eq!(g.entries().len(), 1);
        prop_assert_eq!(g.exits().len(), 1);
        prop_assert_eq!(g.name(g.entries()[0]), "cell[0,0]");
        prop_assert_eq!(
            g.name(g.exits()[0]),
            &format!("cell[{},{}]", width - 1, steps - 1)
        );
        // Task ids are row-major: cell (i, j) = j·width + i, and its
        // in-degree counts exactly its west and north neighbours.
        for j in 0..steps {
            for i in 0..width {
                let t = TaskId((j * width + i) as u32);
                prop_assert_eq!(g.name(t), &format!("cell[{i},{j}]"));
                let expect_in = usize::from(i > 0) + usize::from(j > 0);
                let expect_out = usize::from(i + 1 < width) + usize::from(j + 1 < steps);
                prop_assert_eq!(g.in_degree(t), expect_in);
                prop_assert_eq!(g.out_degree(t), expect_out);
            }
        }
        prop_assert_eq!(depth(&g), width + steps - 1);
    }

    #[test]
    fn scaling_preserves_structure(g in arb_generated(), f in 0.1f64..10.0) {
        let mut scaled = g.clone();
        scaled.scale_exec_times(f);
        scaled.scale_volumes(f);
        prop_assert!((scaled.total_exec() - g.total_exec() * f).abs()
            < 1e-6 * (1.0 + scaled.total_exec()));
        prop_assert!((scaled.total_volume() - g.total_volume() * f).abs()
            < 1e-6 * (1.0 + scaled.total_volume()));
        prop_assert_eq!(scaled.topo_order(), g.topo_order());
    }
}
