//! Stochastic crash-trace sampling.
//!
//! A [`FailureModel`] declares one exponential failure rate per processor
//! (heterogeneous hosts fail at heterogeneous rates); [`FailureModel::sample_trace`]
//! draws one [`CrashTrace`] from it using the split-stream generator grown
//! in the vendored `rand` ([`StdRng::from_seed_and_stream`]). The stream
//! key is the campaign's *(signature, global trace index)* pair, which is
//! the whole determinism story: trace `j` of a campaign is one pure
//! function of the spec, reproducible from any shard, any thread, any
//! retry — never a function of which worker happened to draw it first.
//!
//! Every processor consumes exactly one draw, in processor order, even
//! when its rate is zero ("never fails"). That keeps draw alignment
//! invariant under rate edits: changing one host's rate never perturbs
//! the crash times sampled for the others under the same stream.

use ltf_sim::CrashTrace;
use rand::distributions::Exp;
use rand::rngs::StdRng;
use rand::{Distribution, RngCore};

/// Per-processor exponential failure rates (crashes per unit time;
/// `0` = the processor never fails).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureModel {
    rates: Vec<f64>,
}

impl FailureModel {
    /// Every one of the `m` processors fails at the same `rate`.
    pub fn uniform(m: usize, rate: f64) -> Self {
        Self::from_rates(vec![rate; m])
    }

    /// Explicit per-processor rates. Each must be finite and ≥ 0.
    pub fn from_rates(rates: Vec<f64>) -> Self {
        assert!(
            rates.iter().all(|r| r.is_finite() && *r >= 0.0),
            "failure rates must be finite and non-negative"
        );
        Self { rates }
    }

    /// Number of processors the model covers.
    pub fn num_procs(&self) -> usize {
        self.rates.len()
    }

    /// The per-processor rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Sample one crash trace: processor `u`'s crash time is an
    /// `Exp(rate[u])` draw (`+∞` when its rate is zero), drawn in
    /// processor order from the `(seed, stream)` split of the shared
    /// generator.
    pub fn sample_trace(&self, seed: u64, stream: u64) -> CrashTrace {
        let mut rng = StdRng::from_seed_and_stream(seed, stream);
        let crash_at = self
            .rates
            .iter()
            .map(|&rate| {
                if rate > 0.0 {
                    Exp::new(rate).sample(&mut rng)
                } else {
                    // Burn the draw anyway: alignment over thrift.
                    let _ = rng.next_u64();
                    f64::INFINITY
                }
            })
            .collect();
        CrashTrace::from_crash_times(crash_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(t: &CrashTrace) -> Vec<u64> {
        (0..t.num_procs())
            .map(|u| t.crash_time(u).to_bits())
            .collect()
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_stream() {
        let model = FailureModel::from_rates(vec![0.02, 0.001, 0.0, 0.02]);
        let a = model.sample_trace(0xB10B_5EED, 7);
        let b = model.sample_trace(0xB10B_5EED, 7);
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(a.crash_time(2), f64::INFINITY);
        // Different streams are different traces...
        let c = model.sample_trace(0xB10B_5EED, 8);
        assert_ne!(bits(&a), bits(&c));
        // ...and so are different seeds under the same stream.
        let d = model.sample_trace(0xB10B_5EEE, 7);
        assert_ne!(bits(&a), bits(&d));
    }

    #[test]
    fn zero_rate_consumes_a_draw_so_alignment_survives_rate_edits() {
        let with_hole = FailureModel::from_rates(vec![0.5, 0.0, 0.5]);
        let without = FailureModel::from_rates(vec![0.5, 0.25, 0.5]);
        let a = with_hole.sample_trace(3, 11);
        let b = without.sample_trace(3, 11);
        // Changing proc 1's rate changes only proc 1's crash time.
        assert_eq!(a.crash_time(0).to_bits(), b.crash_time(0).to_bits());
        assert_eq!(a.crash_time(2).to_bits(), b.crash_time(2).to_bits());
        assert_eq!(a.crash_time(1), f64::INFINITY);
        assert!(b.crash_time(1).is_finite());
    }

    #[test]
    fn rates_scale_sampled_times() {
        // The same uniform draw at rate λ is 1/λ-scaled: doubling every
        // rate exactly halves every crash time.
        let slow = FailureModel::uniform(8, 0.01).sample_trace(42, 0);
        let fast = FailureModel::uniform(8, 0.02).sample_trace(42, 0);
        for u in 0..8 {
            assert!((slow.crash_time(u) / 2.0 - fast.crash_time(u)).abs() < 1e-9);
        }
    }
}
