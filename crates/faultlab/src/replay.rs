//! Replaying a sampled crash trace through a simulator.
//!
//! One thin, typed dispatch point: a campaign cell declares which
//! executable semantics ([`SimEngine`]) and which online recovery policy
//! it measures under, and [`replay`] runs one trace through the matching
//! `ltf-sim` entry point. Keeping the dispatch here (rather than inside
//! the campaign loop) is what the replay-level property tests hang off:
//! same trace, both engines, compare item by item.

use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::Schedule;
use ltf_sim::{asap_trace, synchronous_trace, CrashTrace, RecoveryPolicy, SimReport, TraceConfig};

/// Which executable semantics a cell is measured under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEngine {
    /// Stage-synchronous windows (the paper's latency model; default).
    Synchronous,
    /// Event-driven ASAP execution with one-port contention.
    Asap,
}

impl SimEngine {
    /// Parse the spec-file name of an engine.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "synchronous" => Some(Self::Synchronous),
            "asap" => Some(Self::Asap),
            _ => None,
        }
    }

    /// The spec-file name of the engine.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Synchronous => "synchronous",
            Self::Asap => "asap",
        }
    }
}

/// How a cell replays its traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Stream items pushed through the pipeline per trace.
    pub items: usize,
    /// What the runtime does when scheduled sources die.
    pub policy: RecoveryPolicy,
    /// Which simulator measures the trace.
    pub engine: SimEngine,
}

/// Replay one crash trace through the configured simulator.
pub fn replay(
    g: &TaskGraph,
    p: &Platform,
    sched: &Schedule,
    trace: CrashTrace,
    cfg: &ReplayConfig,
) -> SimReport {
    let tc = TraceConfig::new(cfg.items, trace, cfg.policy);
    match cfg.engine {
        SimEngine::Synchronous => synchronous_trace(g, sched, &tc),
        SimEngine::Asap => asap_trace(g, p, sched, &tc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_round_trip() {
        for e in [SimEngine::Synchronous, SimEngine::Asap] {
            assert_eq!(SimEngine::parse(e.name()), Some(e));
        }
        assert_eq!(SimEngine::parse("warp"), None);
    }
}
