//! Stochastic failure campaigns with SLO distribution reporting.
//!
//! The worst-case analyses elsewhere in the workspace ask *"does this
//! schedule survive any ε crashes?"*. Production reliability asks a
//! statistical question instead: given real per-processor failure rates,
//! what latency distribution, item-loss rate, and SLO violation rate does
//! each (heuristic, ε, platform) configuration actually deliver? This
//! crate is the mechanism layer for answering it:
//!
//! * [`sample`] — [`FailureModel`] draws per-processor exponential crash
//!   times into [`ltf_sim::CrashTrace`]s, keyed by *(campaign signature,
//!   global trace index)* through the split-stream generator so every
//!   trace is a pure function of the spec;
//! * [`replay`](mod@replay) — [`replay()`] runs one trace through the chosen
//!   [`SimEngine`] (stage-synchronous or ASAP) under a
//!   [`ltf_sim::RecoveryPolicy`];
//! * [`digest`] — [`LatencyDigest`], a bounded log-bucket histogram with
//!   exact extrema: integer-only recording, element-wise-additive merging,
//!   sparse validated serialization;
//! * [`slo`] — [`CellStats`] accumulation, [`SloRow`] rendering, and the
//!   [`SloReport`] JSON-lines/CSV outputs the byte-identity contract is
//!   stated over.
//!
//! Policy — which cells exist, how traces shard into work items, where
//! checkpoints live — stays in `ltf-experiments::campaign::slo`, which
//! wires these pieces into the PR 5 checkpointed harness and the PR 7
//! campaign sharding. The layering keeps this crate free of workload
//! generation and lets the replay-level property tests exercise the
//! mechanisms directly. See `docs/slo-campaign.md` for the end-to-end
//! campaign format and determinism contract.

pub mod digest;
pub mod replay;
pub mod sample;
pub mod slo;

pub use crate::digest::LatencyDigest;
pub use crate::replay::{replay, ReplayConfig, SimEngine};
pub use crate::sample::FailureModel;
pub use crate::slo::{CellStats, SloReport, SloRow, SloThreshold};
