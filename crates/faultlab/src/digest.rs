//! A bounded, mergeable latency digest.
//!
//! SLO campaigns aggregate millions of per-item latencies per cell; keeping
//! them all would make work-item results unbounded and checkpoint journals
//! enormous. [`LatencyDigest`] instead buckets each sample into a
//! logarithmic histogram read straight off the `f64` bit pattern — the
//! biased exponent picks the octave, the top [`SUB_BITS`] mantissa bits the
//! sub-bucket — so recording is integer-only (no `log`, no platform-`libm`
//! variance), every quoted percentile is a deterministic bucket lower edge
//! within `2^-SUB_BITS` (≈3.1%) of the true value, and the exact observed
//! minimum and maximum are carried alongside. Counts are plain `u64`s, so
//! merging two digests is element-wise addition: associative and
//! commutative, which is what lets shard/thread-split campaigns rebuild the
//! serial digest bit-for-bit (the harness still merges in global item order,
//! making the stronger byte-identity contract structural rather than
//! arithmetic).
//!
//! The serialized form is sparse — ascending `(bucket, count)` pairs plus
//! the total and the exact extrema — and the decoder re-validates all of it
//! (indices in range and strictly ascending, counts non-zero and summing to
//! the total, extrema finite and consistent), so a corrupted journal record
//! is rejected instead of silently skewing a report.

use serde::{DeError, Deserialize, Serialize, Value};

/// Mantissa bits per octave: 2^5 = 32 sub-buckets, ≈3.1% relative width.
pub const SUB_BITS: u32 = 5;
const SUBS: u64 = 1 << SUB_BITS;
/// Smallest biased exponent with its own buckets: values below
/// `2^(EXP_LO − 1023) = 2^-20` (≈1e-6) land in the underflow bucket.
const EXP_LO: u64 = 1003;
/// First biased exponent past the bucketed range: values at or above
/// `2^(EXP_HI − 1023) = 2^40` (≈1.1e12) land in the overflow bucket.
const EXP_HI: u64 = 1063;
/// Dense bucket count: 60 octaves × 32 sub-buckets + underflow + overflow.
pub const NUM_BUCKETS: usize = ((EXP_HI - EXP_LO) * SUBS) as usize + 2;

/// Bucket index of a finite non-negative sample.
fn bucket_of(x: f64) -> usize {
    if x < f64::from_bits(EXP_LO << 52) {
        return 0; // zero, subnormals, and everything below 2^-20
    }
    let bits = x.to_bits();
    let exp = bits >> 52; // sign bit is clear: x > 0
    if exp >= EXP_HI {
        return NUM_BUCKETS - 1;
    }
    let sub = (bits >> (52 - SUB_BITS)) & (SUBS - 1);
    1 + ((exp - EXP_LO) * SUBS + sub) as usize
}

/// Smallest value mapping into bucket `b` (the quoted representative).
fn bucket_lower(b: usize) -> f64 {
    if b == 0 {
        return 0.0;
    }
    if b == NUM_BUCKETS - 1 {
        return f64::from_bits(EXP_HI << 52);
    }
    let i = (b - 1) as u64;
    let exp = EXP_LO + i / SUBS;
    let sub = i % SUBS;
    f64::from_bits((exp << 52) | (sub << (52 - SUB_BITS)))
}

/// A bounded log-bucket histogram of latencies with exact extrema.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyDigest {
    counts: Vec<u64>,
    total: u64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Default for LatencyDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyDigest {
    /// An empty digest.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            min: None,
            max: None,
        }
    }

    /// Record one latency sample. Samples must be finite and non-negative
    /// — the simulators never report anything else, so a violation is a
    /// bug worth a loud panic, not a value worth mis-bucketing.
    pub fn record(&mut self, x: f64) {
        assert!(
            x.is_finite() && x >= 0.0,
            "latency sample {x} must be finite and non-negative"
        );
        self.counts[bucket_of(x)] += 1;
        self.total += 1;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact smallest recorded sample.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Exact largest recorded sample.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Fold another digest into this one (element-wise count addition,
    /// extrema by min/max) — associative and commutative.
    pub fn merge(&mut self, other: &LatencyDigest) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Nearest-rank `pct`-th percentile (same rank rule as
    /// [`ltf_core::stats`]): the lower edge of the bucket holding the
    /// ranked sample, clamped into the exact `[min, max]` envelope — so a
    /// single-sample digest quotes that sample exactly, and `pct = 100`
    /// always quotes the exact maximum.
    pub fn percentile(&self, pct: f64) -> Option<f64> {
        let idx = ltf_core::stats::nearest_rank(self.total as usize, pct)?;
        let rank = idx as u64 + 1;
        // The extreme ranks are tracked exactly; only interior ranks pay
        // the bucket-width rounding.
        if rank == self.total {
            return self.max;
        }
        if rank == 1 {
            return self.min;
        }
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let (lo, hi) = (self.min.expect("non-empty"), self.max.expect("non-empty"));
                return Some(bucket_lower(b).clamp(lo, hi));
            }
        }
        unreachable!("rank {rank} exceeds total {}", self.total)
    }
}

impl Serialize for LatencyDigest {
    fn to_value(&self) -> Value {
        let sparse: Vec<(u64, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b as u64, c))
            .collect();
        Value::Map(vec![
            ("buckets".to_string(), sparse.to_value()),
            ("count".to_string(), Value::UInt(self.total)),
            ("min".to_string(), self.min.to_value()),
            ("max".to_string(), self.max.to_value()),
        ])
    }
}

impl Deserialize for LatencyDigest {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        const TY: &str = "LatencyDigest";
        let entries = match v {
            Value::Map(entries) => entries,
            other => return Err(DeError::expected("map for `LatencyDigest`", other)),
        };
        for (k, _) in entries {
            if !matches!(k.as_str(), "buckets" | "count" | "min" | "max") {
                return Err(DeError::unknown_field(k, TY));
            }
        }
        let sparse: Vec<(u64, u64)> = serde::__field(entries, "buckets", TY)?;
        let total: u64 = serde::__field(entries, "count", TY)?;
        let min: Option<f64> = serde::__field(entries, "min", TY)?;
        let max: Option<f64> = serde::__field(entries, "max", TY)?;

        let mut counts = vec![0u64; NUM_BUCKETS];
        let mut sum = 0u64;
        let mut prev: Option<u64> = None;
        for &(b, c) in &sparse {
            if b >= NUM_BUCKETS as u64 {
                return Err(DeError::custom(format!(
                    "buckets: index {b} out of range (digest has {NUM_BUCKETS} buckets)"
                )));
            }
            if prev.is_some_and(|p| b <= p) {
                return Err(DeError::custom(format!(
                    "buckets: index {b} not strictly ascending"
                )));
            }
            if c == 0 {
                return Err(DeError::custom(format!("buckets: index {b} has count 0")));
            }
            prev = Some(b);
            counts[b as usize] = c;
            sum = sum
                .checked_add(c)
                .ok_or_else(|| DeError::custom("buckets: counts overflow u64"))?;
        }
        if sum != total {
            return Err(DeError::custom(format!(
                "count {total} does not match bucket sum {sum}"
            )));
        }
        let consistent = match (total, min, max) {
            (0, None, None) => true,
            (n, Some(lo), Some(hi)) if n > 0 => lo.is_finite() && hi.is_finite() && lo <= hi,
            _ => false,
        };
        if !consistent {
            return Err(DeError::custom(format!(
                "extrema min={min:?} max={max:?} inconsistent with count {total}"
            )));
        }
        Ok(Self {
            counts,
            total,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_monotone_and_self_consistent() {
        let mut prev = -1.0f64;
        for b in 0..NUM_BUCKETS {
            let lo = bucket_lower(b);
            assert!(lo > prev, "bucket {b}: lower edge {lo} not increasing");
            prev = lo;
            // The lower edge of every bucket maps back into that bucket.
            assert_eq!(bucket_of(lo), b, "bucket {b}: lower edge {lo} drifts");
        }
        // Relative bucket width in the normal range is 2^-SUB_BITS.
        for x in [1e-3, 0.5, 1.0, 7.25, 1e4, 9.9e9] {
            let b = bucket_of(x);
            let lo = bucket_lower(b);
            assert!(lo <= x && x < bucket_lower(b + 1));
            assert!((x - lo) / x <= 1.0 / SUBS as f64 + 1e-12);
        }
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(1e-9), 0);
        assert_eq!(bucket_of(1e15), NUM_BUCKETS - 1);
    }

    #[test]
    fn percentiles_clamp_to_exact_extrema() {
        let mut d = LatencyDigest::new();
        assert_eq!(d.percentile(50.0), None);
        d.record(42.5);
        // One sample: every percentile is that sample, exactly.
        assert_eq!(d.percentile(0.0), Some(42.5));
        assert_eq!(d.percentile(50.0), Some(42.5));
        assert_eq!(d.percentile(100.0), Some(42.5));
        for x in [10.0, 20.0, 30.0, 40.0] {
            d.record(x);
        }
        assert_eq!(d.count(), 5);
        assert_eq!(d.min(), Some(10.0));
        assert_eq!(d.max(), Some(42.5));
        // p100 is always the exact maximum; interior percentiles are
        // bucket lower edges within one bucket width below the truth.
        assert_eq!(d.percentile(100.0), Some(42.5));
        let p50 = d.percentile(50.0).unwrap();
        assert!(p50 <= 30.0 && p50 > 30.0 * (1.0 - 1.0 / SUBS as f64) - 1e-12);
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let xs = [3.0, 1.5, 88.0, 0.25, 3.0, 1e7];
        let ys = [2.0, 2.0, 640.0];
        let mut both = LatencyDigest::new();
        for &x in xs.iter().chain(&ys) {
            both.record(x);
        }
        let (mut a, mut b) = (LatencyDigest::new(), LatencyDigest::new());
        xs.iter().for_each(|&x| a.record(x));
        ys.iter().for_each(|&y| b.record(y));
        a.merge(&b);
        assert_eq!(a, both);
        // Merging the empty digest is the identity, in either direction.
        let mut e = LatencyDigest::new();
        e.merge(&a);
        a.merge(&LatencyDigest::new());
        assert_eq!(e, a);
    }

    #[test]
    fn serde_round_trip_is_exact_and_strict() {
        let mut d = LatencyDigest::new();
        for &x in &[0.0, 1.0, 1.03125, 2.5, 1e13] {
            d.record(x);
        }
        let text = serde_json::to_string(&d).unwrap();
        let back: LatencyDigest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, d);
        assert_eq!(serde_json::to_string(&back).unwrap(), text);

        let empty_text = serde_json::to_string(&LatencyDigest::new()).unwrap();
        let back: LatencyDigest = serde_json::from_str(&empty_text).unwrap();
        assert!(back.is_empty());

        // Corruption is rejected, not absorbed.
        for bad in [
            r#"{"buckets":[[0,1]],"count":2,"min":1.0,"max":1.0}"#, // sum mismatch
            r#"{"buckets":[[9999999,1]],"count":1,"min":1.0,"max":1.0}"#, // out of range
            r#"{"buckets":[[5,1],[3,1]],"count":2,"min":1.0,"max":1.0}"#, // not ascending
            r#"{"buckets":[[5,0]],"count":0,"min":null,"max":null}"#, // zero count
            r#"{"buckets":[],"count":0,"min":1.0,"max":null}"#,     // extrema mismatch
            r#"{"buckets":[],"count":0,"min":null,"max":null,"bogus":1}"#, // unknown field
        ] {
            assert!(
                serde_json::from_str::<LatencyDigest>(bad).is_err(),
                "accepted corrupt digest {bad}"
            );
        }
    }
}
