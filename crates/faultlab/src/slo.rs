//! Per-cell SLO accounting and report rows.
//!
//! A campaign cell — one (heuristic, ε, platform, …) point — replays many
//! sampled crash traces and folds every item outcome into one
//! [`CellStats`]: the latency distribution (a bounded
//! [`LatencyDigest`]), the produced/lost item
//! counters, and the count of *SLO violations* — items that were lost
//! **or** finished above the declared per-item latency bound
//! ([`SloThreshold::max_latency`]). Stats are mergeable, so trace blocks
//! computed on different shards recombine into exactly the serial cell.
//!
//! [`SloRow`] is the rendered form: one row per cell with p50/p99/p999/max
//! latency, loss rate, violation rate, and the pass/fail verdict against
//! the declared violation budget. [`SloReport`] holds the rows of a whole
//! campaign and renders the two canonical outputs (JSON lines, CSV) the
//! byte-identity contract is stated over.

use crate::digest::LatencyDigest;
use ltf_sim::SimReport;
use serde::{Deserialize, Serialize};

/// The declared service-level objective a cell is judged against.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloThreshold {
    /// Per-item latency bound; an item produced above it is a violation
    /// (`None` = only losses violate).
    pub max_latency: Option<f64>,
    /// Tolerated violation rate; the cell passes when
    /// `violations / items ≤` this (`None` = zero tolerance).
    pub max_violation_rate: Option<f64>,
}

impl SloThreshold {
    /// Whether a produced item at latency `l` violates the objective.
    pub fn violated_by(&self, l: f64) -> bool {
        self.max_latency.is_some_and(|bound| l > bound)
    }

    /// Whether a cell with `rate` violations per item passes.
    pub fn passes(&self, rate: f64) -> bool {
        rate <= self.max_violation_rate.unwrap_or(0.0)
    }
}

/// Mergeable per-cell accumulator over replayed traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// Traces folded in.
    pub traces: u64,
    /// Stream items across those traces.
    pub items: u64,
    /// Items that produced all stream outputs.
    pub produced: u64,
    /// Items lost to crashes (always violations).
    pub lost: u64,
    /// Items lost or produced above the latency bound.
    pub violations: u64,
    /// Latency distribution over produced items.
    pub latency: LatencyDigest,
}

impl Default for CellStats {
    fn default() -> Self {
        Self::new()
    }
}

impl CellStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            traces: 0,
            items: 0,
            produced: 0,
            lost: 0,
            violations: 0,
            latency: LatencyDigest::new(),
        }
    }

    /// Fold one replayed trace's report in, judged against `slo`.
    pub fn record(&mut self, rep: &SimReport, slo: &SloThreshold) {
        self.traces += 1;
        for l in &rep.item_latency {
            self.items += 1;
            match l {
                Some(l) => {
                    self.produced += 1;
                    self.latency.record(*l);
                    if slo.violated_by(*l) {
                        self.violations += 1;
                    }
                }
                None => {
                    self.lost += 1;
                    self.violations += 1;
                }
            }
        }
    }

    /// Fold another cell accumulator in (counter addition, digest merge).
    pub fn merge(&mut self, other: &CellStats) {
        self.traces += other.traces;
        self.items += other.items;
        self.produced += other.produced;
        self.lost += other.lost;
        self.violations += other.violations;
        self.latency.merge(&other.latency);
    }

    /// Fraction of items lost (0 when nothing ran).
    pub fn loss_rate(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.lost as f64 / self.items as f64
        }
    }

    /// Fraction of items violating the SLO (0 when nothing ran).
    pub fn violation_rate(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.violations as f64 / self.items as f64
        }
    }
}

/// One rendered report row: a cell's identity plus its SLO verdict.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloRow {
    /// Cell index in campaign expansion order.
    pub cell: u64,
    /// Human-readable cell label.
    pub label: String,
    /// Whether the cell's witness schedule exists (an infeasible cell
    /// replays nothing and fails its SLO by definition).
    pub feasible: bool,
    /// Traces replayed.
    pub traces: u64,
    /// Stream items across those traces.
    pub items: u64,
    /// Items produced.
    pub produced: u64,
    /// Items lost.
    pub lost: u64,
    /// `lost / items`.
    pub loss_rate: f64,
    /// Median produced latency (digest bucket edge).
    pub p50: Option<f64>,
    /// 99th-percentile produced latency.
    pub p99: Option<f64>,
    /// 99.9th-percentile produced latency.
    pub p999: Option<f64>,
    /// Exact maximum produced latency.
    pub max: Option<f64>,
    /// Items lost or above the latency bound.
    pub violations: u64,
    /// `violations / items`.
    pub violation_rate: f64,
    /// Whether the violation rate is within the declared budget.
    pub slo_ok: bool,
}

impl SloRow {
    /// Render a cell's accumulated stats against its objective.
    pub fn from_stats(
        cell: u64,
        label: String,
        feasible: bool,
        stats: &CellStats,
        slo: &SloThreshold,
    ) -> Self {
        let violation_rate = stats.violation_rate();
        Self {
            cell,
            label,
            feasible,
            traces: stats.traces,
            items: stats.items,
            produced: stats.produced,
            lost: stats.lost,
            loss_rate: stats.loss_rate(),
            p50: stats.latency.percentile(50.0),
            p99: stats.latency.percentile(99.0),
            p999: stats.latency.percentile(99.9),
            max: stats.latency.max(),
            violations: stats.violations,
            violation_rate,
            slo_ok: feasible && slo.passes(violation_rate),
        }
    }

    /// Header line matching [`SloRow::csv_line`].
    pub const CSV_HEADER: &'static str = "cell,label,feasible,traces,items,produced,lost,\
         loss_rate,p50,p99,p999,max,violations,violation_rate,slo_ok";

    /// The row as one CSV line (`None` percentiles render empty).
    pub fn csv_line(&self) -> String {
        let opt = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.cell,
            self.label,
            self.feasible,
            self.traces,
            self.items,
            self.produced,
            self.lost,
            self.loss_rate,
            opt(self.p50),
            opt(self.p99),
            opt(self.p999),
            opt(self.max),
            self.violations,
            self.violation_rate,
            self.slo_ok
        )
    }

    /// The row as one JSON line.
    pub fn json_line(&self) -> String {
        serde_json::to_string(self).expect("value writer is infallible")
    }
}

/// A whole campaign's SLO report: one row per cell, expansion order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloReport {
    /// Per-cell rows in campaign expansion order.
    pub rows: Vec<SloRow>,
}

impl SloReport {
    /// The canonical JSON-lines rendering (one line per cell).
    pub fn json_lines(&self) -> Vec<String> {
        self.rows.iter().map(SloRow::json_line).collect()
    }

    /// The canonical CSV rendering (header + one line per cell).
    pub fn csv_lines(&self) -> Vec<String> {
        std::iter::once(SloRow::CSV_HEADER.to_string())
            .chain(self.rows.iter().map(SloRow::csv_line))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: &[Option<f64>]) -> SimReport {
        SimReport {
            item_latency: latencies.to_vec(),
            item_completion: latencies.to_vec(),
            makespan: 0.0,
        }
    }

    #[test]
    fn violations_count_losses_and_slow_items() {
        let slo = SloThreshold {
            max_latency: Some(50.0),
            max_violation_rate: Some(0.5),
        };
        let mut stats = CellStats::new();
        stats.record(&report(&[Some(30.0), Some(50.0), Some(60.0), None]), &slo);
        assert_eq!(
            (stats.traces, stats.items, stats.produced, stats.lost),
            (1, 4, 3, 1)
        );
        // 60.0 > bound and the loss: two violations; 50.0 is exactly at
        // the bound and passes.
        assert_eq!(stats.violations, 2);
        assert_eq!(stats.violation_rate(), 0.5);
        assert_eq!(stats.loss_rate(), 0.25);

        let row = SloRow::from_stats(3, "cell".into(), true, &stats, &slo);
        assert!(row.slo_ok); // 0.5 ≤ budget 0.5
        assert_eq!(row.max, Some(60.0));
        // Zero tolerance by default: the same stats fail without a budget.
        let strict = SloRow::from_stats(3, "cell".into(), true, &stats, &SloThreshold::default());
        assert!(!strict.slo_ok);
        // An infeasible cell never passes, whatever its (empty) stats say.
        let infeasible = SloRow::from_stats(3, "cell".into(), false, &stats, &slo);
        assert!(!infeasible.slo_ok && !infeasible.feasible);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let slo = SloThreshold {
            max_latency: Some(25.0),
            max_violation_rate: None,
        };
        let reports = [
            report(&[Some(10.0), Some(30.0)]),
            report(&[None, Some(20.0)]),
            report(&[Some(5.0)]),
        ];
        let mut whole = CellStats::new();
        reports.iter().for_each(|r| whole.record(r, &slo));
        let mut left = CellStats::new();
        left.record(&reports[0], &slo);
        let mut right = CellStats::new();
        right.record(&reports[1], &slo);
        right.record(&reports[2], &slo);
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn empty_cell_renders_cleanly() {
        let row = SloRow::from_stats(
            0,
            "idle".into(),
            true,
            &CellStats::new(),
            &SloThreshold::default(),
        );
        assert_eq!(
            (row.items, row.loss_rate, row.violation_rate),
            (0, 0.0, 0.0)
        );
        assert!(row.slo_ok && row.p50.is_none() && row.max.is_none());
        let rep = SloReport { rows: vec![row] };
        assert_eq!(rep.csv_lines().len(), 2);
        assert!(rep.csv_lines()[1].contains(",,,")); // empty percentile cells
        assert!(rep.json_lines()[0].contains("\"p50\":null"));
    }

    #[test]
    fn cell_stats_round_trip_through_json() {
        let mut stats = CellStats::new();
        stats.record(
            &report(&[Some(10.0), None, Some(99.5)]),
            &SloThreshold::default(),
        );
        let text = serde_json::to_string(&stats).unwrap();
        let back: CellStats = serde_json::from_str(&text).unwrap();
        assert_eq!(back, stats);
    }
}
