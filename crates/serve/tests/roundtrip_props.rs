//! Typed JSON round-trip properties: for every wire type `T`,
//! `T → serde_json::to_string → serde_json::from_str::<T> → T` is the
//! identity. Rust's `{}` float formatting guarantees the shortest
//! round-trippable decimal, so exact `==` on `f64` fields is sound
//! (non-finite floats serialize as `null` and are excluded by
//! construction — every generator below produces finite weights).

use ltf_core::{AlgoConfig, SolutionMetrics};
use ltf_graph::generate::{fig1_diamond, fig2_workflow_variant, layered, LayeredConfig};
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::export::{summarize, ScheduleSummary};
use ltf_serve::proto::RequestConfig;
use ltf_serve::SolutionWire;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize, Value};

fn roundtrip<T: Serialize + Deserialize>(x: &T) -> T {
    let text = serde_json::to_string(x).expect("serialize");
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("re-parse of {text}: {e}"))
}

fn random_config(rng: &mut StdRng) -> AlgoConfig {
    let mut cfg = AlgoConfig::new(rng.gen_range(0u8..4), rng.gen_range(0.5..100.0));
    cfg.chunk_size = if rng.gen_bool(0.5) {
        None
    } else {
        Some(rng.gen_range(1usize..64))
    };
    cfg.seed = rng.next_u64();
    cfg.use_one_to_one = rng.gen_bool(0.5);
    cfg.rule1 = rng.gen_bool(0.5);
    cfg.rule2 = rng.gen_bool(0.5);
    cfg.cluster_ties = rng.gen_bool(0.5);
    cfg
}

fn random_graph(rng: &mut StdRng, tasks: usize) -> TaskGraph {
    layered(
        &LayeredConfig {
            tasks,
            exec_range: (0.25, 4.0),
            volume_range: (0.1, 2.0),
            ..Default::default()
        },
        rng,
    )
}

fn random_platform(rng: &mut StdRng) -> Platform {
    let m = rng.gen_range(2usize..8);
    let speeds: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..3.5)).collect();
    let mut delays = vec![0.0; m * m];
    for k in 0..m {
        for h in 0..m {
            if k != h {
                delays[k * m + h] = rng.gen_range(0.0..1.0);
            }
        }
    }
    Platform::from_parts(speeds, delays)
}

#[test]
fn algo_config_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xA1_60);
    for _ in 0..200 {
        let cfg = random_config(&mut rng);
        assert_eq!(roundtrip(&cfg), cfg);
        // The request wire form resolves back to the same AlgoConfig.
        let wire = RequestConfig::from_algo(&cfg);
        assert_eq!(roundtrip(&wire), wire);
        assert_eq!(wire.to_algo().expect("valid"), cfg);
    }
}

#[test]
fn graph_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0x96_A9);
    let mut graphs: Vec<TaskGraph> = (0..40)
        .map(|i| random_graph(&mut rng, 4 + (i % 20)))
        .collect();
    graphs.push(fig1_diamond());
    graphs.push(fig2_workflow_variant());
    for g in &graphs {
        let h: TaskGraph = roundtrip(g);
        assert_eq!(h.num_tasks(), g.num_tasks());
        assert_eq!(h.num_edges(), g.num_edges());
        for t in g.tasks() {
            assert_eq!(h.name(t), g.name(t));
            assert_eq!(h.exec(t), g.exec(t));
        }
        for id in g.edge_ids() {
            assert_eq!(h.edge(id), g.edge(id));
        }
        // Value-level idempotence: re-serializing the round-tripped graph
        // yields the identical document.
        assert_eq!(h.to_value(), g.to_value());
    }
}

#[test]
fn platform_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0x97_1A);
    for _ in 0..60 {
        let p = random_platform(&mut rng);
        let q: Platform = roundtrip(&p);
        // Platform has no PartialEq; the wire tree is a faithful witness.
        assert_eq!(q.to_value(), p.to_value());
        assert_eq!(q.num_procs(), p.num_procs());
    }
}

#[test]
fn schedule_and_solution_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5C_8D);
    let mut checked = 0;
    for i in 0..30 {
        let g = random_graph(&mut rng, 6 + (i % 12));
        let p = random_platform(&mut rng);
        let solver = ltf_baselines::full_solver(&g, &p);
        let cfg = AlgoConfig::new((i % 2) as u8, 1e7).seeded(i as u64);
        for name in ["ltf", "rltf", "fault-free"] {
            if name == "fault-free" && cfg.epsilon > 0 {
                continue;
            }
            let Ok(sol) = solver.solve(name, &cfg) else {
                continue;
            };
            // ScheduleData round-trips exactly (PR 3's gap: schedules can
            // now come back off the wire).
            let data = sol.schedule.to_data();
            assert_eq!(roundtrip(&data), data);
            // Full Solution round-trip through the wire envelope.
            let wire = SolutionWire::from_solution(&sol);
            let back = roundtrip(&wire);
            assert_eq!(back, wire);
            let rebuilt = back.into_solution(&g, &p).expect("valid wire schedule");
            assert_eq!(rebuilt.heuristic, sol.heuristic);
            assert_eq!(rebuilt.schedule.to_data(), data);
            // Metrics are recomputed on arrival and must agree with the
            // solve-time originals field by field.
            let m: SolutionMetrics = roundtrip(&sol.metrics);
            assert_eq!(m, sol.metrics);
            assert_eq!(rebuilt.metrics, sol.metrics);
            // The export summary round-trips, too.
            let summary = summarize(&g, &p, &sol.schedule);
            let s2: ScheduleSummary = roundtrip(&summary);
            assert_eq!(s2, summary);
            checked += 1;
        }
    }
    assert!(checked >= 20, "only {checked} feasible solves checked");
}

#[test]
fn tampered_wire_schedules_are_rejected() {
    let g = fig1_diamond();
    let p = Platform::fig1_platform();
    let solver = ltf_baselines::full_solver(&g, &p);
    let sol = solver.solve("rltf", &AlgoConfig::new(1, 30.0)).unwrap();
    let wire = SolutionWire::from_solution(&sol);

    // Shrunk placement vector: Schedule::new would panic, the wire
    // validation reports instead.
    let mut bad = wire.clone();
    bad.schedule.proc_of.pop();
    assert!(bad.into_solution(&g, &p).unwrap_err().contains("proc_of"));

    // Out-of-range processor.
    let mut bad = wire.clone();
    bad.schedule.proc_of[0] = ltf_platform::ProcId(99);
    assert!(bad.into_solution(&g, &p).unwrap_err().contains("P100"));

    // Non-finite replica time.
    let mut bad = wire.clone();
    bad.schedule.start[0] = f64::INFINITY;
    assert!(bad
        .into_solution(&g, &p)
        .unwrap_err()
        .contains("non-finite"));

    // Source copy beyond ε.
    let mut bad = wire;
    for choices in &mut bad.schedule.sources {
        for c in choices.iter_mut() {
            c.sources = vec![9];
        }
    }
    assert!(bad
        .into_solution(&g, &p)
        .unwrap_err()
        .contains("out of range"));
}

#[test]
fn value_tree_survives_typed_detour() {
    // `from_str::<Value>` (the journal replay path) and the typed path
    // agree on the same document.
    let cfg = AlgoConfig::new(2, 12.5);
    let text = serde_json::to_string(&cfg).unwrap();
    let v: Value = serde_json::from_str(&text).unwrap();
    let direct: AlgoConfig = serde_json::from_str(&text).unwrap();
    assert_eq!(AlgoConfig::from_value(&v).unwrap(), direct);
}
