//! Pipe-mode golden test: a fixed request stream must produce the exact
//! committed response stream, byte for byte. This is what makes the
//! service scriptable — solve responses carry no timestamps or other
//! nondeterminism (timings live only in `{"cmd":"stats"}` replies, which
//! are deliberately absent from the fixture).
//!
//! Regenerate the fixtures after an intentional protocol change with
//! `LTF_SERVE_BLESS=1 cargo test -p ltf-serve --test golden`.
//! CI additionally pipes `requests.jsonl` through the real binary and
//! diffs against `responses.jsonl` (see `.github/workflows/ci.yml`).

use ltf_graph::generate::{fig1_diamond, fig2_workflow_variant};
use ltf_platform::Platform;
use ltf_serve::proto::RequestConfig;
use ltf_serve::{Service, ServiceConfig, SolveRequest};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn request(
    id: u64,
    heuristic: &str,
    g: &ltf_graph::TaskGraph,
    p: &Platform,
    epsilon: u8,
    period: f64,
) -> String {
    serde_json::to_string(&SolveRequest {
        id: Some(id),
        heuristic: heuristic.to_string(),
        graph: g.clone(),
        platform: p.clone(),
        config: RequestConfig {
            epsilon,
            period,
            chunk_size: None,
            seed: None,
            use_one_to_one: None,
            rule1: None,
            rule2: None,
            cluster_ties: None,
        },
    })
    .expect("request")
}

/// The fixture's request stream: worked examples through several
/// heuristics, a duplicate (exercising `cached:true`), every error class,
/// and the deterministic `heuristics` control command.
fn requests() -> Vec<String> {
    let fig1_g = fig1_diamond();
    let fig1_p = Platform::fig1_platform();
    let fig2_g = fig2_workflow_variant();
    let fig2_p = Platform::homogeneous(8, 1.0, 0.5);
    let mut lines = vec![
        request(1, "rltf", &fig1_g, &fig1_p, 1, 30.0),
        request(2, "ltf", &fig1_g, &fig1_p, 1, 30.0),
        request(3, "fault-free", &fig1_g, &fig1_p, 0, 30.0),
        request(4, "rltf", &fig2_g, &fig2_p, 1, 40.0),
        request(5, "heft", &fig1_g, &fig1_p, 0, 30.0),
        // Duplicate of request 1 (different id, same key): cache hit.
        request(6, "RLTF", &fig1_g, &fig1_p, 1, 30.0),
        // Solver-level failure: period far too tight.
        request(7, "ltf", &fig2_g, &fig2_p, 3, 4.0),
    ];
    lines.push(r#"{"cmd":"heuristics"}"#.to_string());
    // Protocol-level failures, one per class.
    lines.push(r#"{"id":8,"heuristic":"magic","graph":{"tasks":[{"name":"a","exec":1.0}],"edges":[]},"platform":{"speeds":[1.0],"delays":[0.0]},"config":{"epsilon":0,"period":5.0}}"#.to_string());
    lines.push(r#"{"id":9,"heuristic":"ltf","graph":{"tasks":[{"name":"a","exec":1.0}],"edges":[]},"platform":{"speeds":[1.0],"delays":[0.0]},"config":{"epsilon":0,"period":5.0},"shiny":true}"#.to_string());
    lines.push(r#"{"id":10,"heuristic":"ltf","graph":{"tasks":[{"name":"a","exec":"fast"}],"edges":[]},"platform":{"speeds":[1.0],"delays":[0.0]},"config":{"epsilon":0,"period":5.0}}"#.to_string());
    lines.push(r#"{"id":11,"heuristic":"ltf","#.to_string());
    lines
}

#[test]
fn golden_pipe_responses() {
    let lines = requests();
    let mut service = Service::new(ServiceConfig::default());
    let responses = service.handle_lines(&lines);
    let requests_text = lines.join("\n") + "\n";
    let responses_text = responses.join("\n") + "\n";

    let dir = golden_dir();
    let req_path = dir.join("requests.jsonl");
    let resp_path = dir.join("responses.jsonl");
    if std::env::var_os("LTF_SERVE_BLESS").is_some() {
        std::fs::create_dir_all(&dir).expect("golden dir");
        std::fs::write(&req_path, &requests_text).expect("write requests");
        std::fs::write(&resp_path, &responses_text).expect("write responses");
        return;
    }
    let want_req = std::fs::read_to_string(&req_path).expect("requests.jsonl (bless first)");
    let want_resp = std::fs::read_to_string(&resp_path).expect("responses.jsonl (bless first)");
    assert_eq!(
        requests_text, want_req,
        "request generator drifted from tests/golden/requests.jsonl — \
         rerun with LTF_SERVE_BLESS=1 if intentional"
    );
    assert_eq!(
        responses_text, want_resp,
        "service output drifted from tests/golden/responses.jsonl — \
         rerun with LTF_SERVE_BLESS=1 if intentional"
    );
}

#[test]
fn golden_fixture_sanity() {
    // Independent of the byte-level diff: the committed fixture exercises
    // a cache hit, both error layers, and at least one success per
    // worked example.
    let mut service = Service::new(ServiceConfig::default());
    let responses = service.handle_lines(&requests());
    assert!(responses.iter().any(|r| r.contains(r#""cached":true"#)));
    assert!(responses.iter().any(|r| r.contains(r#""cached":false"#)));
    for kind in ["unknown-heuristic", "bad-request", "parse", "infeasible"] {
        assert!(
            responses
                .iter()
                .any(|r| r.contains(&format!(r#""kind":"{kind}""#))),
            "no {kind} response in the fixture"
        );
    }
    let report = service.stats_report();
    assert_eq!(report.served as usize, responses.len() - 1); // heuristics cmd is uncounted
    assert_eq!(report.cache_hits, 1);
}
