//! Campaign shard mode: the `{"cmd":"shard",...}` worker half of the
//! `ltf-campaign` coordinator's connect mode. Asserts the reply envelope
//! (`ok`/`id`/`shard`/`items`/`results`), that the results are exactly
//! what an in-process `run_shard` produces, and that malformed shard
//! requests draw structured `"ok":false` replies without killing the
//! service.

use ltf_core::shard::Shard;
use ltf_experiments::campaign::{
    run_shard, run_slo_shard, CampaignSpec, ItemResult, SloItemResult,
};
use ltf_serve::{Service, ServiceConfig};
use serde::{Deserialize, Value};

const SPEC: &str = r#"{
  "name": "shard-mode",
  "graphs": ["fig1", "fig2-variant"],
  "heuristics": ["rltf", "ltf"],
  "epsilons": [{"max": 1}]
}"#;

fn service() -> Service {
    Service::new(ServiceConfig {
        threads: 1,
        ..ServiceConfig::default()
    })
}

fn shard_line(spec_json: &str, shard: &str, id: u64) -> String {
    let spec: Value = serde_json::from_str(spec_json).unwrap();
    let v = Value::Map(vec![
        ("cmd".to_string(), Value::Str("shard".to_string())),
        ("id".to_string(), Value::UInt(id)),
        ("spec".to_string(), spec),
        ("shard".to_string(), Value::Str(shard.to_string())),
    ]);
    serde_json::to_string(&v).unwrap()
}

fn field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

#[test]
fn shard_reply_matches_in_process_run() {
    let mut s = service();
    let resp = s.handle_line(&shard_line(SPEC, "1/2", 7));
    let v: Value = serde_json::from_str(&resp).expect("reply is JSON");
    assert_eq!(field(&v, "ok"), Some(&Value::Bool(true)), "{resp}");
    assert_eq!(field(&v, "id"), Some(&Value::UInt(7)));
    assert_eq!(field(&v, "shard"), Some(&Value::Str("1/2".to_string())));
    let Some(Value::Seq(results)) = field(&v, "results") else {
        panic!("no results array: {resp}");
    };
    let got: Vec<ItemResult> = results
        .iter()
        .map(|r| ItemResult::from_value(r).expect("typed result"))
        .collect();

    let spec = CampaignSpec::parse(SPEC).unwrap();
    let shard: Shard = "1/2".parse().unwrap();
    let mut want = Vec::new();
    run_shard(&spec, shard, 1, None, |r| want.push(r.clone())).unwrap();
    assert_eq!(got, want, "wire results differ from in-process run_shard");
    assert_eq!(field(&v, "items"), Some(&Value::UInt(want.len() as u64)));
}

#[test]
fn slo_shard_reply_matches_in_process_run() {
    const SLO_SPEC: &str = r#"{
      "name": "shard-mode-slo",
      "graphs": ["fig1"],
      "heuristics": ["rltf"],
      "epsilons": [{"max": 1}],
      "failure": {"rate": 0.002, "traces": 4, "items": 6, "block": 2,
                  "period": 30.0, "policy": "reroute"},
      "slo": {"max_latency": 200.0, "max_violation_rate": 0.1}
    }"#;
    let mut s = service();
    let resp = s.handle_line(&shard_line(SLO_SPEC, "0/2", 11));
    let v: Value = serde_json::from_str(&resp).expect("reply is JSON");
    assert_eq!(field(&v, "ok"), Some(&Value::Bool(true)), "{resp}");
    let Some(Value::Seq(results)) = field(&v, "results") else {
        panic!("no results array: {resp}");
    };
    let got: Vec<SloItemResult> = results
        .iter()
        .map(|r| SloItemResult::from_value(r).expect("typed slo result"))
        .collect();

    let spec = CampaignSpec::parse(SLO_SPEC).unwrap();
    let shard: Shard = "0/2".parse().unwrap();
    let mut want = Vec::new();
    run_slo_shard(&spec, shard, 1, None, |r| want.push(r.clone())).unwrap();
    assert_eq!(
        got, want,
        "wire results differ from in-process run_slo_shard"
    );
    assert_eq!(field(&v, "items"), Some(&Value::UInt(want.len() as u64)));
}

#[test]
fn bad_shard_string_is_rejected() {
    let mut s = service();
    let resp = s.handle_line(&shard_line(SPEC, "5/2", 1));
    let v: Value = serde_json::from_str(&resp).unwrap();
    assert_eq!(field(&v, "ok"), Some(&Value::Bool(false)), "{resp}");
    assert_eq!(
        field(&v, "error"),
        Some(&Value::Str("bad-request".to_string()))
    );
}

#[test]
fn invalid_spec_fails_structurally_and_service_survives() {
    let mut s = service();
    let bad = SPEC.replace("fig2-variant", "fig9");
    let resp = s.handle_line(&shard_line(&bad, "0/1", 2));
    let v: Value = serde_json::from_str(&resp).unwrap();
    assert_eq!(field(&v, "ok"), Some(&Value::Bool(false)), "{resp}");
    assert_eq!(
        field(&v, "error"),
        Some(&Value::Str("shard-failed".to_string()))
    );
    let msg = field(&v, "message").cloned();
    assert!(
        matches!(msg, Some(Value::Str(m)) if m.contains("fig9")),
        "{resp}"
    );
    // Same instance keeps serving.
    let resp = s.handle_line(&shard_line(SPEC, "0/2", 3));
    let v: Value = serde_json::from_str(&resp).unwrap();
    assert_eq!(field(&v, "ok"), Some(&Value::Bool(true)), "{resp}");
}

#[test]
fn unknown_field_in_shard_request_is_a_bad_request() {
    let mut s = service();
    let line = shard_line(SPEC, "0/1", 4).replace(r#""cmd":"shard""#, r#""cmd":"shard","oops":1"#);
    let resp = s.handle_line(&line);
    // Shape errors surface through the standard error envelope (the line
    // never reached the shard handler).
    assert!(resp.contains(r#""status":"error""#), "{resp}");
    assert!(resp.contains(r#""kind":"bad-request""#), "{resp}");
    assert!(resp.contains("oops"), "{resp}");
}
