//! Protocol error corpus: one test per malformed-request class. Every
//! case asserts (a) a structured error reply with the right `kind`, and
//! (b) that the service keeps serving — the next well-formed request on
//! the same instance succeeds. A malformed line must never terminate the
//! daemon.

use ltf_serve::{Service, ServiceConfig};
use serde::{Deserialize, Value};

fn service() -> Service {
    Service::new(ServiceConfig::default())
}

fn small_service(max_tasks: usize) -> Service {
    Service::new(ServiceConfig {
        max_tasks,
        ..ServiceConfig::default()
    })
}

const VALID: &str = r#"{"id":100,"heuristic":"rltf","graph":{"tasks":[{"name":"a","exec":2.0},{"name":"b","exec":3.0}],"edges":[{"src":0,"dst":1,"volume":1.0}]},"platform":{"speeds":[1.0,1.0],"delays":[0.0,0.5,0.5,0.0]},"config":{"epsilon":1,"period":30.0}}"#;

/// Decode a response line's envelope fields.
fn envelope(line: &str) -> (Option<u64>, String, Option<String>, String) {
    let v: Value = serde_json::from_str(line).expect("response is valid JSON");
    let Value::Map(entries) = &v else {
        panic!("response is not a map: {line}")
    };
    let field = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let id = field("id").and_then(|v| u64::from_value(v).ok());
    let status = String::from_value(field("status").expect("status field")).unwrap();
    let kind = field("kind").and_then(|v| String::from_value(v).ok());
    let message = field("message")
        .and_then(|v| String::from_value(v).ok())
        .unwrap_or_default();
    (id, status, kind, message)
}

/// Run one malformed line, assert its error class, then prove the service
/// still answers a valid request.
fn assert_error_then_recovery(service: &mut Service, line: &str, expect_kind: &str, needle: &str) {
    let before = service.stats_report().served;
    let resp = service.handle_line(line);
    let (_, status, kind, message) = envelope(&resp);
    assert_eq!(status, "error", "for {line}: {resp}");
    assert_eq!(kind.as_deref(), Some(expect_kind), "for {line}: {resp}");
    assert!(
        message.contains(needle),
        "message {message:?} misses {needle:?}"
    );
    // The daemon keeps serving: same service, next request succeeds.
    let (id, status, ..) = envelope(&service.handle_line(VALID));
    assert_eq!((id, status.as_str()), (Some(100), "ok"));
    assert_eq!(service.stats_report().served, before + 2);
}

#[test]
fn truncated_line() {
    let mut s = service();
    let truncated = &VALID[..VALID.len() / 2];
    assert_error_then_recovery(&mut s, truncated, "parse", "");
    assert_error_then_recovery(&mut s, r#"{"id":1,"heuristic":"ltf""#, "parse", "");
    assert_eq!(s.stats_report().errors_by_kind["parse"], 2);
}

#[test]
fn unknown_field() {
    let mut s = service();
    let line = VALID.replace(r#""id":100"#, r#""id":1,"priority":"high""#);
    assert_error_then_recovery(&mut s, &line, "bad-request", "unknown field `priority`");
    // Unknown fields nested in the config are caught by the same strict
    // decoding.
    let line = VALID.replace(r#""epsilon":1"#, r#""epsilon":1,"retries":3"#);
    assert_error_then_recovery(&mut s, &line, "bad-request", "unknown field `retries`");
}

#[test]
fn wrong_type() {
    let mut s = service();
    let line = VALID.replace(r#""epsilon":1"#, r#""epsilon":"one""#);
    assert_error_then_recovery(&mut s, &line, "bad-request", "epsilon");
    let line = VALID.replace(r#""speeds":[1.0,1.0]"#, r#""speeds":"fast""#);
    assert_error_then_recovery(&mut s, &line, "bad-request", "platform");
    let line = VALID.replace(r#""exec":2.0"#, r#""exec":true"#);
    assert_error_then_recovery(&mut s, &line, "bad-request", "exec");
}

#[test]
fn missing_field() {
    let mut s = service();
    let line = VALID.replace(r#""heuristic":"rltf","#, "");
    assert_error_then_recovery(&mut s, &line, "bad-request", "missing field `heuristic`");
}

#[test]
fn unknown_heuristic_name() {
    let mut s = service();
    let line = VALID.replace(r#""heuristic":"rltf""#, r#""heuristic":"magic""#);
    assert_error_then_recovery(&mut s, &line, "unknown-heuristic", "magic");
    // The reply echoes the offending name in the heuristic field.
    let resp = s.handle_line(&line);
    assert!(resp.contains(r#""heuristic":"magic""#), "{resp}");
}

#[test]
fn oversized_graph() {
    let mut s = small_service(4);
    // Five tasks against a four-task limit.
    let tasks: Vec<String> = (0..5)
        .map(|i| format!(r#"{{"name":"t{i}","exec":1.0}}"#))
        .collect();
    let line = format!(
        r#"{{"id":9,"heuristic":"ltf","graph":{{"tasks":[{}],"edges":[]}},"platform":{{"speeds":[1.0],"delays":[0.0]}},"config":{{"epsilon":0,"period":100.0}}}}"#,
        tasks.join(",")
    );
    let resp = s.handle_line(&line);
    let (id, status, kind, message) = envelope(&resp);
    assert_eq!(id, Some(9));
    assert_eq!(status, "error");
    assert_eq!(kind.as_deref(), Some("too-large"));
    assert!(message.contains("5 tasks"), "{message}");
    // A two-task request (under the limit) still succeeds.
    let (_, status, ..) = envelope(&s.handle_line(VALID));
    assert_eq!(status, "ok");
}

#[test]
fn invalid_structures_and_values() {
    let mut s = service();
    // Structurally invalid graph (cycle) — rejected by construction.
    let line = VALID.replace(
        r#""edges":[{"src":0,"dst":1,"volume":1.0}]"#,
        r#""edges":[{"src":0,"dst":1,"volume":1.0},{"src":1,"dst":0,"volume":1.0}]"#,
    );
    assert_error_then_recovery(&mut s, &line, "bad-request", "cyclic");
    // Invalid platform (non-zero self-delay).
    let line = VALID.replace(
        r#""delays":[0.0,0.5,0.5,0.0]"#,
        r#""delays":[0.9,0.5,0.5,0.0]"#,
    );
    assert_error_then_recovery(&mut s, &line, "bad-request", "self-delay");
    // Non-positive period.
    let line = VALID.replace(r#""period":30.0"#, r#""period":-1.0"#);
    assert_error_then_recovery(&mut s, &line, "bad-request", "period");
    // JSON scalar instead of an object.
    assert_error_then_recovery(&mut s, "42", "bad-request", "");
    // Unknown control command.
    assert_error_then_recovery(&mut s, r#"{"cmd":"shutdown"}"#, "bad-request", "shutdown");
}

/// The topology platform form: every structural rejection class of the
/// `{"topology": {...}}` block surfaces as a typed `bad-request`, and a
/// well-formed routed request actually solves.
#[test]
fn topology_platform_rejections() {
    let mut s = service();
    let with_topology = |links: &str, model: &str| {
        VALID.replace(
            r#""delays":[0.0,0.5,0.5,0.0]"#,
            &format!(r#""topology":{{"links":{links}{model}}}"#),
        )
    };
    // Endpoint out of the speed vector's range.
    let line = with_topology("[[0,7,0.5]]", "");
    assert_error_then_recovery(&mut s, &line, "bad-request", "out of range");
    // Self-link.
    let line = with_topology("[[1,1,0.5]]", "");
    assert_error_then_recovery(&mut s, &line, "bad-request", "self-link");
    // Non-positive link delay.
    let line = with_topology("[[0,1,-0.5]]", "");
    assert_error_then_recovery(&mut s, &line, "bad-request", "delay is -0.5");
    // Disconnected topology (no links at all between the two processors).
    let line = with_topology("[]", "");
    assert_error_then_recovery(&mut s, &line, "bad-request", "disconnected");
    // Unknown communication model tag.
    let line = with_topology("[[0,1,0.5]]", r#","model":"Turbo""#);
    assert_error_then_recovery(&mut s, &line, "bad-request", "unknown variant");
    // Unknown field inside the topology block.
    let line = with_topology("[[0,1,0.5]]", r#","wires":3"#);
    assert_error_then_recovery(&mut s, &line, "bad-request", "wires");
    // Both forms at once.
    let line = VALID.replace(
        r#""delays":[0.0,0.5,0.5,0.0]"#,
        r#""delays":[0.0,0.5,0.5,0.0],"topology":{"links":[[0,1,0.5]]}"#,
    );
    assert_error_then_recovery(&mut s, &line, "bad-request", "not both");
    // And the well-formed routed request solves (both modes).
    for model in ["", r#","model":"Contended""#, r#","model":"Uniform""#] {
        let line = with_topology("[[0,1,0.5]]", model).replace(r#""id":100"#, r#""id":101"#);
        let (id, status, ..) = envelope(&s.handle_line(&line));
        assert_eq!((id, status.as_str()), (Some(101), "ok"), "model {model:?}");
    }
}

#[test]
fn error_storm_leaves_service_healthy() {
    // A mixed storm of every malformed class, then a burst of valid work:
    // counters add up and the cache still functions.
    let mut s = service();
    let bad = [
        "",
        "{",
        "null",
        r#"{"cmd":17}"#,
        r#"{"id":1}"#,
        r#"{"id":2,"heuristic":"nope","graph":{"tasks":[{"name":"a","exec":1.0}],"edges":[]},"platform":{"speeds":[1.0],"delays":[0.0]},"config":{"epsilon":0,"period":1.0}}"#,
    ];
    let lines: Vec<&str> = bad
        .iter()
        .cycle()
        .take(60)
        .chain(std::iter::repeat_n(&VALID, 10))
        .copied()
        .collect();
    let responses = s.handle_lines(&lines);
    assert_eq!(responses.len(), 70);
    for resp in &responses[..60] {
        assert!(resp.contains(r#""status":"error""#), "{resp}");
    }
    for resp in &responses[60..] {
        assert!(resp.contains(r#""status":"ok""#), "{resp}");
    }
    let report = s.stats_report();
    assert_eq!(report.served, 70);
    assert_eq!(report.errors, 60);
    assert_eq!(report.ok, 10);
    // One real solve, nine cache hits.
    assert_eq!(report.cache_misses, 1);
    assert_eq!(report.cache_hits, 9);
}
