//! LRU cache properties: capacity-bounded eviction in recency order,
//! case-insensitive heuristic-name keying, and hit/miss counters that
//! match a naive unbounded-map replay. Also the engine-level property
//! the protocol relies on: batch handling is serially equivalent.

use ltf_core::AlgoConfig;
use ltf_graph::generate::{fig1_diamond, layered, LayeredConfig};
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_serve::cache::{graph_fingerprint, platform_fingerprint};
use ltf_serve::{CacheKey, LruCache, Service, ServiceConfig, SolutionWire};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

fn instance() -> (TaskGraph, Platform) {
    (fig1_diamond(), Platform::fig1_platform())
}

/// A distinct key per `seed` (the config seed is part of the key).
fn key_for(g: &TaskGraph, p: &Platform, heuristic: &str, seed: u64) -> CacheKey {
    CacheKey::new(g, p, heuristic, &AlgoConfig::new(0, 10.0).seeded(seed))
}

/// Any cached payload; eviction tests only care about keys.
fn payload(g: &TaskGraph, p: &Platform) -> SolutionWire {
    let solver = ltf_baselines::full_solver(g, p);
    SolutionWire::from_solution(&solver.solve("ltf", &AlgoConfig::new(0, 100.0)).unwrap())
}

#[test]
fn capacity_evicts_least_recently_used() {
    let (g, p) = instance();
    let wire = payload(&g, &p);
    let mut cache = LruCache::new(3);
    let keys: Vec<CacheKey> = (0..5).map(|s| key_for(&g, &p, "ltf", s)).collect();
    for k in &keys[..3] {
        cache.insert(k.clone(), wire.clone());
    }
    assert_eq!(cache.len(), 3);
    // Touch key 0 so key 1 becomes the LRU entry.
    assert!(cache.get(&keys[0]).is_some());
    cache.insert(keys[3].clone(), wire.clone());
    assert!(!cache.contains(&keys[1]), "LRU entry must be evicted");
    assert!(cache.contains(&keys[0]) && cache.contains(&keys[2]) && cache.contains(&keys[3]));
    // Order introspection agrees: 2 is now least recently used.
    cache.insert(keys[4].clone(), wire.clone());
    assert!(!cache.contains(&keys[2]));
    assert_eq!(cache.len(), 3);
    // Re-inserting an existing key refreshes recency instead of growing.
    cache.insert(keys[0].clone(), wire.clone());
    assert_eq!(cache.len(), 3);
    assert_eq!(cache.keys_lru_first().last().expect("non-empty"), &keys[0]);
}

#[test]
fn zero_capacity_disables_caching() {
    let (g, p) = instance();
    let wire = payload(&g, &p);
    let mut cache = LruCache::new(0);
    let k = key_for(&g, &p, "ltf", 1);
    cache.insert(k.clone(), wire);
    assert!(cache.is_empty());
    assert!(cache.get(&k).is_none());
    assert_eq!((cache.hits(), cache.misses()), (0, 1));
}

#[test]
fn heuristic_name_keys_are_case_insensitive() {
    let (g, p) = instance();
    for (a, b) in [
        ("ltf", "LTF"),
        ("rltf", "Rltf"),
        ("fault-free", "FAULT-FREE"),
    ] {
        assert_eq!(key_for(&g, &p, a, 7), key_for(&g, &p, b, 7));
    }
    assert_ne!(key_for(&g, &p, "ltf", 7), key_for(&g, &p, "rltf", 7));
}

#[test]
fn fingerprints_separate_instances() {
    let mut rng = StdRng::seed_from_u64(0xF1_99);
    let mut graph_fps = HashSet::new();
    let mut plat_fps = HashSet::new();
    for i in 0..50 {
        let g = layered(
            &LayeredConfig {
                tasks: 6 + (i % 10),
                exec_range: (0.5, 2.0),
                volume_range: (0.2, 1.0),
                ..Default::default()
            },
            &mut rng,
        );
        let p = Platform::homogeneous(2 + (i % 5), 1.0 + i as f64 * 0.01, 0.25);
        assert!(graph_fps.insert(graph_fingerprint(&g)), "graph collision");
        assert!(
            plat_fps.insert(platform_fingerprint(&p)),
            "platform collision"
        );
        // Fingerprints are pure functions of the content.
        assert_eq!(graph_fingerprint(&g), graph_fingerprint(&g.clone()));
        assert_eq!(platform_fingerprint(&p), platform_fingerprint(&p.clone()));
    }
    // A weight nudge changes the graph fingerprint.
    let g = fig1_diamond();
    let mut h = g.clone();
    h.scale_exec_times(1.0000001);
    assert_ne!(graph_fingerprint(&g), graph_fingerprint(&h));

    // A contended platform shares its delay matrix with its flattened twin
    // but schedules differently, so the fingerprints must differ; the
    // Uniform-mode lowering is matrix-equivalent and hashes identically.
    use ltf_platform::{CommMode, Topology};
    let chain = || Topology::chain(vec![1.0; 4], 0.5);
    let flat = chain().into_platform().unwrap();
    let uniform = chain().into_platform_with(CommMode::Uniform).unwrap();
    let contended = chain().into_contended_platform().unwrap();
    assert_eq!(platform_fingerprint(&flat), platform_fingerprint(&uniform));
    assert_ne!(
        platform_fingerprint(&flat),
        platform_fingerprint(&contended)
    );
}

/// Replay a random request stream against the LRU and against a naive
/// unbounded map, asserting the counters agree whenever the capacity is
/// large enough, and that LRU hits are a subset of naive hits otherwise.
#[test]
fn counters_match_naive_map_replay() {
    let (g, p) = instance();
    let wire = payload(&g, &p);
    let mut rng = StdRng::seed_from_u64(0x10_0F);
    for &capacity in &[2usize, 5, 16, 64] {
        let mut cache = LruCache::new(capacity);
        let mut naive: HashSet<u64> = HashSet::new();
        let mut naive_hits = 0u64;
        let mut naive_misses = 0u64;
        for _ in 0..300 {
            let seed = rng.gen_range(0u64..12);
            let key = key_for(&g, &p, "ltf", seed);
            let lru_hit = cache.get(&key).is_some();
            if !lru_hit {
                cache.insert(key, wire.clone());
            }
            if naive.insert(seed) {
                naive_misses += 1;
                assert!(!lru_hit, "LRU cannot hit a key never inserted");
            } else {
                naive_hits += 1;
            }
            assert!(cache.len() <= capacity, "capacity breached");
        }
        assert_eq!(cache.hits() + cache.misses(), 300);
        if capacity >= 12 {
            // Working set (12 keys) fits: LRU behaves exactly like the
            // unbounded map.
            assert_eq!((cache.hits(), cache.misses()), (naive_hits, naive_misses));
        } else {
            // Evictions can only turn would-be hits into misses.
            assert!(cache.hits() <= naive_hits);
            assert!(cache.misses() >= naive_misses);
        }
    }
}

/// The engine invariant everything above feeds into: batched handling is
/// serially equivalent — same responses, same counters, same cache
/// content — regardless of batch size, even with duplicate requests and
/// tiny cache capacities forcing in-batch evictions.
#[test]
fn batch_handling_is_serially_equivalent() {
    let (g, p) = instance();
    let mut rng = StdRng::seed_from_u64(0x5E_41);
    let heuristics = ["ltf", "RLTF", "fault-free", "heft"];
    let lines: Vec<String> = (0..48)
        .map(|i| {
            let heuristic = heuristics[rng.gen_range(0usize..heuristics.len())];
            let req = ltf_serve::SolveRequest {
                id: Some(i),
                heuristic: heuristic.to_string(),
                graph: g.clone(),
                platform: p.clone(),
                config: ltf_serve::proto::RequestConfig {
                    epsilon: rng.gen_range(0u8..2),
                    period: [30.0, 40.0][rng.gen_range(0usize..2)],
                    chunk_size: None,
                    seed: Some(rng.gen_range(0u64..3)),
                    use_one_to_one: None,
                    rule1: None,
                    rule2: None,
                    cluster_ties: None,
                },
            };
            serde_json::to_string(&req).unwrap()
        })
        .collect();
    for &capacity in &[1usize, 2, 64] {
        let config = ServiceConfig {
            cache_capacity: capacity,
            ..ServiceConfig::default()
        };
        let mut serial = Service::new(config.clone());
        let serial_responses: Vec<String> = lines.iter().map(|l| serial.handle_line(l)).collect();
        for &batch in &[4usize, 16, 48] {
            let mut batched = Service::new(config.clone());
            let responses: Vec<String> = lines
                .chunks(batch)
                .flat_map(|chunk| batched.handle_lines(chunk))
                .collect();
            assert_eq!(
                responses, serial_responses,
                "capacity {capacity}, batch {batch}"
            );
            let (sr, br) = (serial.stats_report(), batched.stats_report());
            assert_eq!(
                br.cache_hits, sr.cache_hits,
                "capacity {capacity}, batch {batch}"
            );
            assert_eq!(br.cache_misses, sr.cache_misses);
            assert_eq!((br.ok, br.errors), (sr.ok, sr.errors));
            // Identical content *and* identical recency order.
            let serial_keys: Vec<_> = serial.cache().keys_lru_first().cloned().collect();
            let batched_keys: Vec<_> = batched.cache().keys_lru_first().cloned().collect();
            assert_eq!(batched_keys, serial_keys);
        }
    }
}
