//! LRU memoization of solve outcomes.
//!
//! Keys are cheap fingerprints, not the instances themselves: an FNV-1a
//! hash over the graph's exact weights and structure, one over the
//! platform's speed and delay matrices, the *canonical lowercase*
//! heuristic name (so `"RLTF"`, `"rltf"` and a registered alias all hit
//! the same entry), and the fully-resolved [`AlgoConfig`] with float
//! knobs compared by bit pattern. Only successful solves are cached —
//! an infeasible verdict is cheap to recompute and callers often retry
//! with a modified configuration.

use crate::proto::SolutionWire;
use ltf_core::AlgoConfig;
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use std::collections::{HashMap, VecDeque};

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Streaming FNV-1a hasher over little-endian words.
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }

    fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Fingerprint of a [`TaskGraph`]: structure, names and exact weights.
pub fn graph_fingerprint(g: &TaskGraph) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(g.num_tasks() as u64);
    for t in g.tasks() {
        h.write_str(g.name(t));
        h.write_f64(g.exec(t));
    }
    h.write_u64(g.num_edges() as u64);
    for id in g.edge_ids() {
        let e = g.edge(id);
        h.write_u64(e.src.0 as u64);
        h.write_u64(e.dst.0 as u64);
        h.write_f64(e.volume);
    }
    h.0
}

/// Fingerprint of a [`Platform`]: the full speed vector and delay matrix,
/// plus — for routed platforms — the physical links and the contended
/// flag. A contended platform schedules differently from its flattened
/// twin even though the two share a delay matrix, so the link layer must
/// disambiguate the key; matrix platforms hash exactly as before.
pub fn platform_fingerprint(p: &Platform) -> u64 {
    let mut h = Fnv::new();
    let m = p.num_procs();
    h.write_u64(m as u64);
    for u in p.procs() {
        h.write_f64(p.speed(u));
    }
    for u in p.procs() {
        for v in p.procs() {
            h.write_f64(p.unit_delay(u, v));
        }
    }
    if p.is_contended() {
        h.write_str("contended");
        h.write_u64(p.num_links() as u64);
        for l in p.topology_links() {
            h.write_u64(l.a as u64);
            h.write_u64(l.b as u64);
            h.write_f64(l.delay);
        }
    }
    h.0
}

/// Cache key: instance fingerprints plus the exact solve configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    graph: u64,
    platform: u64,
    /// Canonical heuristic name, lowercased by [`CacheKey::new`].
    heuristic: String,
    epsilon: u8,
    period_bits: u64,
    chunk_size: Option<usize>,
    seed: u64,
    flags: u8,
}

impl CacheKey {
    /// Build a key. `heuristic` must already be resolved to its canonical
    /// name (the engine does this through the registry); it is lowercased
    /// here so key equality is case-insensitive by construction.
    pub fn new(g: &TaskGraph, p: &Platform, heuristic: &str, cfg: &AlgoConfig) -> Self {
        Self {
            graph: graph_fingerprint(g),
            platform: platform_fingerprint(p),
            heuristic: heuristic.to_ascii_lowercase(),
            epsilon: cfg.epsilon,
            period_bits: cfg.period.to_bits(),
            chunk_size: cfg.chunk_size,
            seed: cfg.seed,
            flags: (cfg.use_one_to_one as u8)
                | (cfg.rule1 as u8) << 1
                | (cfg.rule2 as u8) << 2
                | (cfg.cluster_ties as u8) << 3,
        }
    }
}

/// An LRU map from [`CacheKey`] to solved [`SolutionWire`] payloads.
///
/// `get` refreshes recency; `insert` evicts the least-recently-used entry
/// once `capacity` is reached. Hit/miss counters feed the service stats.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<CacheKey, SolutionWire>,
    /// Keys from least- to most-recently used.
    order: VecDeque<CacheKey>,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// An empty cache holding at most `capacity` solutions. A capacity of
    /// zero disables caching (every lookup is a miss, inserts are
    /// dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached solutions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Successful lookups so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Failed lookups so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether `key` is cached, without touching recency or counters.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }

    /// Look `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<SolutionWire> {
        match self.map.get(key) {
            Some(v) => {
                self.hits += 1;
                let v = v.clone();
                self.touch(key);
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used entry
    /// when full.
    pub fn insert(&mut self, key: CacheKey, value: SolutionWire) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), value).is_some() {
            self.touch(&key);
            return;
        }
        if self.map.len() > self.capacity {
            if let Some(lru) = self.order.pop_front() {
                self.map.remove(&lru);
            }
        }
        self.order.push_back(key);
    }

    /// Keys from least- to most-recently used (test/debug introspection).
    pub fn keys_lru_first(&self) -> impl Iterator<Item = &CacheKey> {
        self.order.iter()
    }

    fn touch(&mut self, key: &CacheKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos).expect("position is in range");
            self.order.push_back(k);
        }
    }
}
