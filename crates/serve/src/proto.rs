//! Wire protocol of the solve service.
//!
//! Every request and response is one line of JSON (LDJSON). A request is
//! either a **solve request**,
//!
//! ```json
//! {"id":1,"heuristic":"rltf",
//!  "graph":{"tasks":[{"name":"t0","exec":2.0}],"edges":[]},
//!  "platform":{"speeds":[1.0],"delays":[0.0]},
//!  "config":{"epsilon":0,"period":10.0}}
//! ```
//!
//! or a **control command** — a map carrying a `cmd` key (`stats`,
//! `heuristics`, `shard`). Unknown fields anywhere are rejected (the
//! vendored derive is strict), so typos surface as structured errors
//! instead of silently ignored knobs. The full wire reference lives in
//! `docs/protocol.md`.

use ltf_core::{AlgoConfig, Diagnostics, Solution};
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::{Schedule, ScheduleData};
use serde::{Deserialize, Serialize, Value};

/// Solve-request configuration: `epsilon` and `period` are mandatory,
/// every other [`AlgoConfig`] knob is optional and defaults as
/// [`AlgoConfig::new`] would.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestConfig {
    /// Fault-tolerance degree ε.
    pub epsilon: u8,
    /// Iteration period `Δ = 1/T`.
    pub period: f64,
    /// Chunk size `B` (defaults to `m`).
    pub chunk_size: Option<usize>,
    /// Tie-breaking seed.
    pub seed: Option<u64>,
    /// Enable the one-to-one mapping procedure.
    pub use_one_to_one: Option<bool>,
    /// R-LTF Rule 1.
    pub rule1: Option<bool>,
    /// R-LTF Rule 2.
    pub rule2: Option<bool>,
    /// R-LTF stage-tie clustering.
    pub cluster_ties: Option<bool>,
}

impl RequestConfig {
    /// Resolve the optional knobs into a full [`AlgoConfig`].
    pub fn to_algo(&self) -> Result<AlgoConfig, String> {
        if !(self.period.is_finite() && self.period > 0.0) {
            return Err(format!(
                "period must be finite and positive, got {}",
                self.period
            ));
        }
        let mut cfg = AlgoConfig::new(self.epsilon, self.period);
        cfg.chunk_size = self.chunk_size;
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        if let Some(v) = self.use_one_to_one {
            cfg.use_one_to_one = v;
        }
        if let Some(v) = self.rule1 {
            cfg.rule1 = v;
        }
        if let Some(v) = self.rule2 {
            cfg.rule2 = v;
        }
        if let Some(v) = self.cluster_ties {
            cfg.cluster_ties = v;
        }
        Ok(cfg)
    }

    /// Wire form of a full [`AlgoConfig`] (all knobs explicit).
    pub fn from_algo(cfg: &AlgoConfig) -> Self {
        Self {
            epsilon: cfg.epsilon,
            period: cfg.period,
            chunk_size: cfg.chunk_size,
            seed: Some(cfg.seed),
            use_one_to_one: Some(cfg.use_one_to_one),
            rule1: Some(cfg.rule1),
            rule2: Some(cfg.rule2),
            cluster_ties: Some(cfg.cluster_ties),
        }
    }
}

/// One solve request: which heuristic to run on which instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Heuristic name or alias (case-insensitive).
    pub heuristic: String,
    /// The application DAG (see `ltf_graph::wire` for the shape).
    pub graph: TaskGraph,
    /// The target platform.
    pub platform: Platform,
    /// Objective and algorithm knobs.
    pub config: RequestConfig,
}

/// One campaign-shard request: the worker half of the `ltf-campaign`
/// coordinator's connect mode (see `docs/protocol.md` §shard). The spec
/// travels *in* the request — the remote worker has no spec file — and
/// `shard` is a `"K/N"` partition selector ([`ltf_core::shard::Shard`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardRequest {
    /// Always `"shard"` (the dispatch key; kept so the strict derive can
    /// decode the whole line in one pass).
    pub cmd: String,
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// The full campaign spec to expand.
    pub spec: ltf_experiments::campaign::CampaignSpec,
    /// Which shard of the expanded work-item list to compute, as `"K/N"`.
    pub shard: String,
}

/// A parsed input line.
#[derive(Debug, Clone)]
pub enum Request {
    /// A solve request.
    Solve(Box<SolveRequest>),
    /// `{"cmd":"stats"}` — service-time and cache statistics.
    Stats,
    /// `{"cmd":"heuristics"}` — registered heuristic names and aliases.
    Heuristics,
    /// `{"cmd":"shard",...}` — compute one campaign shard.
    Shard(Box<ShardRequest>),
}

/// Parse one input line into a [`Request`].
///
/// The error carries the response `kind` (`"parse"` for malformed JSON,
/// `"bad-request"` for a well-formed document of the wrong shape) plus the
/// message, and echoes the request `id` when one could be recovered from
/// the broken document.
pub fn parse_request(line: &str) -> Result<Request, (&'static str, String, Option<u64>)> {
    let v: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return Err(("parse", e.to_string(), None)),
    };
    // Salvage the correlation id before shape checks so even a
    // wrong-shaped request gets a correlated error reply.
    let id = match &v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == "id")
            .and_then(|(_, v)| u64::from_value(v).ok()),
        _ => None,
    };
    if let Value::Map(entries) = &v {
        if let Some((_, cmd)) = entries.iter().find(|(k, _)| k == "cmd") {
            let name = match cmd {
                Value::Str(s) => s.as_str(),
                other => {
                    return Err((
                        "bad-request",
                        format!("cmd must be a string, got {}", other.kind()),
                        id,
                    ))
                }
            };
            return match name {
                "stats" | "heuristics" => {
                    if let Some((k, _)) = entries.iter().find(|(k, _)| k != "cmd") {
                        return Err(("bad-request", format!("unknown field `{k}` in command"), id));
                    }
                    Ok(match name {
                        "stats" => Request::Stats,
                        _ => Request::Heuristics,
                    })
                }
                "shard" => ShardRequest::from_value(&v)
                    .map(|r| Request::Shard(Box::new(r)))
                    .map_err(|e| ("bad-request", e.to_string(), id)),
                other => Err(("bad-request", format!("unknown command {other:?}"), id)),
            };
        }
    }
    match SolveRequest::from_value(&v) {
        Ok(req) => Ok(Request::Solve(Box::new(req))),
        Err(e) => Err(("bad-request", e.to_string(), id)),
    }
}

/// Wire form of a [`Solution`]: the schedule travels as raw
/// [`ScheduleData`] and is re-validated and re-assembled on arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolutionWire {
    /// Canonical name of the producing heuristic.
    pub heuristic: String,
    /// Metrics derived at solve time.
    pub metrics: ltf_core::SolutionMetrics,
    /// Full-fidelity schedule payload.
    pub schedule: ScheduleData,
}

impl SolutionWire {
    /// Capture a solved [`Solution`] for the wire.
    pub fn from_solution(sol: &Solution) -> Self {
        Self {
            heuristic: sol.heuristic.clone(),
            metrics: sol.metrics.clone(),
            schedule: sol.schedule.to_data(),
        }
    }

    /// Rebuild the full [`Solution`] against the instance it was solved
    /// for. The shape check makes the panicking [`Schedule::new`] safe on
    /// untrusted data; metrics are recomputed from the rebuilt schedule
    /// (they are derived state, so a tampered wire copy is discarded).
    pub fn into_solution(self, g: &TaskGraph, p: &Platform) -> Result<Solution, String> {
        self.schedule.validate_shape(g, p)?;
        let schedule = Schedule::new(g, p, self.schedule);
        Ok(Solution::new(&self.heuristic, schedule))
    }
}

/// Successful solve reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OkResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"ok"`.
    pub status: String,
    /// Whether the solution came from the LRU cache.
    pub cached: bool,
    /// The solution payload.
    pub solution: SolutionWire,
}

impl OkResponse {
    /// Build an `ok` reply.
    pub fn new(id: Option<u64>, cached: bool, solution: SolutionWire) -> Self {
        Self {
            id,
            status: "ok".to_string(),
            cached,
            solution,
        }
    }
}

/// Error reply: request-level failures (`parse`, `bad-request`,
/// `unknown-heuristic`, `too-large`) and solver-level failures
/// (`infeasible`) share one shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrResponse {
    /// Echo of the request id when one was recoverable.
    pub id: Option<u64>,
    /// Always `"error"`.
    pub status: String,
    /// Machine-readable error class.
    pub kind: String,
    /// Heuristic the request addressed, when known.
    pub heuristic: Option<String>,
    /// Human-readable detail.
    pub message: String,
}

impl ErrResponse {
    /// Build an `error` reply.
    pub fn new(id: Option<u64>, kind: &str, heuristic: Option<String>, message: String) -> Self {
        Self {
            id,
            status: "error".to_string(),
            kind: kind.to_string(),
            heuristic,
            message,
        }
    }

    /// Map failed-solve [`Diagnostics`] onto the wire.
    pub fn from_diagnostics(id: Option<u64>, d: &Diagnostics) -> Self {
        use ltf_core::ScheduleError;
        let kind = match d.error {
            ScheduleError::UnknownHeuristic(_) => "unknown-heuristic",
            ScheduleError::BadConfig(_) => "bad-request",
            _ => "infeasible",
        };
        Self::new(id, kind, Some(d.heuristic.clone()), d.to_string())
    }
}

/// Render any response type as its wire line.
pub fn to_line<T: Serialize>(resp: &T) -> String {
    serde_json::to_string(resp).expect("wire serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_dispatches_commands_and_solves() {
        assert!(matches!(
            parse_request(r#"{"cmd":"stats"}"#).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"heuristics"}"#).unwrap(),
            Request::Heuristics
        ));
        let line = r#"{"id":7,"heuristic":"ltf",
            "graph":{"tasks":[{"name":"a","exec":1.0}],"edges":[]},
            "platform":{"speeds":[1.0],"delays":[0.0]},
            "config":{"epsilon":0,"period":5.0}}"#
            .replace('\n', " ");
        match parse_request(&line).unwrap() {
            Request::Solve(req) => {
                assert_eq!(req.id, Some(7));
                assert_eq!(req.heuristic, "ltf");
                assert_eq!(req.config.to_algo().unwrap().period, 5.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_kind_and_id() {
        let (kind, _, id) = parse_request(r#"{"id":3,"heuristic""#).unwrap_err();
        assert_eq!((kind, id), ("parse", None));
        let (kind, msg, id) = parse_request(r#"{"id":3,"heuristic":"ltf"}"#).unwrap_err();
        assert_eq!((kind, id), ("bad-request", Some(3)));
        assert!(msg.contains("missing field"), "{msg}");
        let (kind, msg, _) = parse_request(r#"{"cmd":"reboot"}"#).unwrap_err();
        assert_eq!(kind, "bad-request");
        assert!(msg.contains("reboot"));
        let (kind, msg, _) = parse_request(r#"{"cmd":"stats","verbose":true}"#).unwrap_err();
        assert_eq!(kind, "bad-request");
        assert!(msg.contains("unknown field `verbose`"));
    }

    #[test]
    fn request_config_defaults_mirror_algo_config() {
        let wire: RequestConfig = serde_json::from_str(r#"{"epsilon":2,"period":8.0}"#).unwrap();
        let cfg = wire.to_algo().unwrap();
        assert_eq!(cfg, {
            let mut c = AlgoConfig::new(2, 8.0);
            c.chunk_size = None;
            c
        });
        assert!(RequestConfig {
            period: f64::NAN,
            ..wire
        }
        .to_algo()
        .is_err());
    }
}
