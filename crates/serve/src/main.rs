//! `ltf-serve` — the scheduling daemon.
//!
//! ```text
//! ltf-serve [--listen ADDR] [--threads N] [--cache-cap N] [--batch N]
//!           [--max-tasks N] [--max-edges N] [--stats] [--soak N]
//!
//! modes:
//!   (default)      pipe mode: read LDJSON requests from stdin, write one
//!                  response line per request to stdout, exit at EOF
//!   --listen ADDR  TCP mode: accept connections on ADDR (e.g.
//!                  127.0.0.1:7475), serve each line-by-line
//!   --soak N       self-test: generate N worked-example-sized requests,
//!                  serve them in-process, assert zero protocol errors
//!                  and print the service-time percentiles to stderr
//! ```
//!
//! Pipe mode batches up to `--batch` lines (default 64) per dispatch onto
//! the solver pool; responses stay in request order and are bit-stable
//! across runs, so piped output can be diffed against goldens. `--stats`
//! prints a final statistics report to *stderr* at EOF (stderr so the
//! stdout stream stays golden-diffable).

use ltf_serve::proto::to_line;
use ltf_serve::{Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::process::exit;
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
struct Opts {
    listen: Option<String>,
    threads: usize,
    cache_cap: usize,
    batch: usize,
    max_tasks: usize,
    max_edges: usize,
    stats: bool,
    soak: Option<usize>,
    help: bool,
}

fn take<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
    expected: &str,
) -> Result<T, String> {
    let raw = args
        .next()
        .ok_or_else(|| format!("{flag}: missing value, expected {expected}"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: got '{raw}', expected {expected}"))
}

fn parse_args_from(args: impl IntoIterator<Item = String>) -> Result<Opts, String> {
    let defaults = ServiceConfig::default();
    let mut opts = Opts {
        listen: None,
        threads: 0,
        cache_cap: defaults.cache_capacity,
        batch: 64,
        max_tasks: defaults.max_tasks,
        max_edges: defaults.max_edges,
        stats: false,
        soak: None,
        help: false,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => opts.listen = Some(take(&mut args, "--listen", "host:port")?),
            "--threads" => opts.threads = take(&mut args, "--threads", "a thread count")?,
            "--cache-cap" => opts.cache_cap = take(&mut args, "--cache-cap", "a capacity")?,
            "--batch" => {
                opts.batch = take(&mut args, "--batch", "a positive batch size")?;
                if opts.batch == 0 {
                    return Err("--batch: got '0', expected a positive batch size".into());
                }
            }
            "--max-tasks" => opts.max_tasks = take(&mut args, "--max-tasks", "a task limit")?,
            "--max-edges" => opts.max_edges = take(&mut args, "--max-edges", "an edge limit")?,
            "--stats" => opts.stats = true,
            "--soak" => opts.soak = Some(take(&mut args, "--soak", "a request count")?),
            "--help" | "-h" => opts.help = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn service_config(opts: &Opts) -> ServiceConfig {
    ServiceConfig {
        threads: opts.threads,
        cache_capacity: opts.cache_cap,
        max_tasks: opts.max_tasks,
        max_edges: opts.max_edges,
    }
}

fn main() {
    let opts = match parse_args_from(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("ltf-serve: {msg}");
            eprintln!("usage: ltf-serve [--listen ADDR] [--threads N] [--cache-cap N] [--batch N] [--max-tasks N] [--max-edges N] [--stats] [--soak N]");
            exit(2);
        }
    };
    if opts.help {
        println!("ltf-serve: LDJSON scheduling service; see README.md §Service");
        println!("usage: ltf-serve [--listen ADDR] [--threads N] [--cache-cap N] [--batch N] [--max-tasks N] [--max-edges N] [--stats] [--soak N]");
        return;
    }
    let service = Service::new(service_config(&opts));
    if let Some(n) = opts.soak {
        exit(soak(service, n));
    }
    match &opts.listen {
        Some(addr) => serve_tcp(service, addr),
        None => serve_pipe(service, &opts),
    }
}

/// Pipe mode: batch stdin lines, answer in order, exit at EOF.
fn serve_pipe(mut service: Service, opts: &Opts) {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut batch = Vec::with_capacity(opts.batch);
    let mut flush = |service: &mut Service, batch: &mut Vec<String>| {
        for resp in service.handle_lines(batch) {
            writeln!(out, "{resp}").expect("stdout");
        }
        out.flush().expect("stdout");
        batch.clear();
    };
    for line in stdin.lock().lines() {
        let line = line.expect("stdin");
        if line.trim().is_empty() {
            continue;
        }
        batch.push(line);
        if batch.len() >= opts.batch {
            flush(&mut service, &mut batch);
        }
    }
    if !batch.is_empty() {
        flush(&mut service, &mut batch);
    }
    if opts.stats {
        eprintln!("{}", to_line(&service.stats_report()));
    }
}

/// TCP mode: line-by-line request/response per connection; connections
/// share the cache and the statistics through a mutex.
fn serve_tcp(service: Service, addr: &str) {
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ltf-serve: cannot listen on {addr}: {e}");
            exit(1);
        }
    };
    // Print the *resolved* address: with `--listen 127.0.0.1:0` the OS
    // picks the port, and campaign drivers scrape it from this line.
    match listener.local_addr() {
        Ok(local) => eprintln!("ltf-serve: listening on {local}"),
        Err(_) => eprintln!("ltf-serve: listening on {addr}"),
    }
    let service = Arc::new(Mutex::new(service));
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ltf-serve: accept failed: {e}");
                continue;
            }
        };
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let peer = stream.peer_addr().map(|a| a.to_string());
            let mut writer = match stream.try_clone() {
                Ok(w) => w,
                Err(_) => return,
            };
            for line in BufReader::new(stream).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let resp = service.lock().expect("service mutex").handle_line(&line);
                if writeln!(writer, "{resp}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break;
                }
            }
            if let Ok(peer) = peer {
                eprintln!("ltf-serve: {peer} disconnected");
            }
        });
    }
}

/// Soak mode: hammer the in-process service with `n` worked-example-sized
/// requests (the paper's Fig. 1 and Fig. 2 instances under rotating
/// heuristics, ε, periods and seeds), assert that no request draws a
/// protocol-level error, and report the percentiles. Returns the process
/// exit code.
fn soak(mut service: Service, n: usize) -> i32 {
    let fig1_g = ltf_graph::generate::fig1_diamond();
    let fig1_p = ltf_platform::Platform::fig1_platform();
    let fig2_g = ltf_graph::generate::fig2_workflow_variant();
    let fig2_p = ltf_platform::Platform::homogeneous(8, 1.0, 0.5);
    let heuristics: Vec<String> = service
        .heuristics()
        .iter()
        .map(|h| h.name.clone())
        .collect();
    let periods = [20.0, 30.0, 40.0, 60.0];

    let t0 = std::time::Instant::now();
    let mut batch = Vec::with_capacity(64);
    let mut served = 0usize;
    for i in 0..n {
        let (g, p) = if i % 2 == 0 {
            (&fig1_g, &fig1_p)
        } else {
            (&fig2_g, &fig2_p)
        };
        let heuristic = &heuristics[i % heuristics.len()];
        let req = ltf_serve::SolveRequest {
            id: Some(i as u64),
            heuristic: heuristic.clone(),
            graph: g.clone(),
            platform: p.clone(),
            config: ltf_serve::proto::RequestConfig {
                epsilon: (i % 3) as u8,
                period: periods[(i / 3) % periods.len()],
                chunk_size: None,
                seed: Some((i % 7) as u64),
                use_one_to_one: None,
                rule1: None,
                rule2: None,
                cluster_ties: None,
            },
        };
        batch.push(serde_json::to_string(&req).expect("soak request"));
        if batch.len() == 64 || i + 1 == n {
            served += service.handle_lines(&batch).len();
            batch.clear();
        }
    }
    let elapsed = t0.elapsed();
    let report = service.stats_report();
    eprintln!(
        "soak: {served} requests in {:.2}s ({:.0} req/s)",
        elapsed.as_secs_f64(),
        served as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    eprintln!("soak: {}", to_line(&report));
    // Solver-level "infeasible" is a legitimate outcome on these
    // instances (LTF genuinely fails on Fig. 2 at m = 8 for some ε);
    // protocol-level errors are not.
    let protocol_errors: u64 = ["parse", "bad-request", "unknown-heuristic", "too-large"]
        .iter()
        .map(|k| report.errors_by_kind.get(*k).copied().unwrap_or(0))
        .sum();
    if served != n || protocol_errors != 0 {
        eprintln!("soak: FAILED ({served}/{n} served, {protocol_errors} protocol errors)");
        return 1;
    }
    eprintln!(
        "soak: ok (p50 {}us, p90 {}us, p99 {}us, hit ratio {:.3})",
        report.p50_us, report.p90_us, report.p99_us, report.cache_hit_ratio
    );
    0
}
