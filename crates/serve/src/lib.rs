//! Scheduler-as-a-service for the LTF / R-LTF strategy family.
//!
//! The `ltf-serve` binary wraps this library: a daemon that reads
//! line-delimited JSON solve requests (stdin/stdout pipe mode, or a TCP
//! listener via `--listen`), answers each with a typed solution or a
//! structured error, memoizes solutions in an LRU keyed by
//! `(graph fingerprint, platform fingerprint, heuristic, config)`, and
//! reports per-request service-time statistics on demand.
//!
//! * [`proto`] — the wire protocol: request/response types and parsing,
//! * [`engine`] — the [`Service`]: batched, serially equivalent request
//!   handling over the `ltf_core::par` pool,
//! * [`cache`] — the [`LruCache`] and instance fingerprints,
//! * [`stats`] — service-time percentiles and outcome counters.
//!
//! A malformed request line never terminates the service: every input
//! line gets exactly one response line, errors included.

pub mod cache;
pub mod engine;
pub mod proto;
pub mod stats;

pub use cache::{CacheKey, LruCache};
pub use engine::{Service, ServiceConfig};
pub use proto::{ErrResponse, OkResponse, Request, SolutionWire, SolveRequest};
pub use stats::StatsReport;
