//! Scheduler-as-a-service for the LTF / R-LTF strategy family.
//!
//! The `ltf-serve` binary wraps this library: a daemon that reads
//! line-delimited JSON solve requests (stdin/stdout pipe mode, or a TCP
//! listener via `--listen`), answers each with a typed solution or a
//! structured error, memoizes solutions in an LRU keyed by
//! `(graph fingerprint, platform fingerprint, heuristic, config)`, and
//! reports per-request service-time statistics on demand. The wire
//! formats are specified in `docs/protocol.md` at the repo root.
//!
//! * [`proto`] — the wire protocol: request/response types and parsing,
//! * [`engine`] — the [`Service`]: batched, serially equivalent request
//!   handling over the `ltf_core::par` pool,
//! * [`cache`] — the [`LruCache`] and instance fingerprints,
//! * [`stats`] — service-time percentiles and outcome counters.
//!
//! Beyond single solves, a daemon doubles as a **campaign worker**: a
//! `{"cmd":"shard",...}` request ([`ShardRequest`]) carries a full
//! campaign spec plus a `"K/N"` shard selector, and the reply streams
//! back that shard's enumerated fronts for the `ltf-campaign`
//! coordinator to merge (connect mode). The compute path is the same
//! `ltf_experiments::campaign` code a spawned worker runs, so spawn
//! mode, connect mode and a serial run are byte-identical by
//! construction.
//!
//! Two properties the tests pin, which everything above relies on:
//!
//! * **A malformed request line never terminates the service** — every
//!   input line gets exactly one response line, errors included
//!   (`tests/protocol_errors.rs`).
//! * **Responses are bit-stable** — timings appear only in `stats`
//!   replies, batching is serially equivalent, so piped output diffs
//!   cleanly against committed goldens (`tests/golden/`).

pub mod cache;
pub mod engine;
pub mod proto;
pub mod stats;

pub use cache::{CacheKey, LruCache};
pub use engine::{Service, ServiceConfig};
pub use proto::{ErrResponse, OkResponse, Request, ShardRequest, SolutionWire, SolveRequest};
pub use stats::StatsReport;
