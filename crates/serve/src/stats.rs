//! Service-time and request accounting, icarus-style: a bounded ring of
//! recent per-request service times feeding nearest-rank percentiles,
//! plus lifetime counters per outcome and per heuristic.

use ltf_core::stats::percentile_sorted_u64;
use serde::Serialize;
use std::collections::BTreeMap;

/// How many recent service times the percentile window keeps.
const RING_CAPACITY: usize = 8192;

/// Mutable accounting state of one service instance.
#[derive(Debug)]
pub struct ServiceStats {
    /// Ring of the most recent per-request service times, microseconds.
    ring: Vec<u64>,
    /// Next ring slot to overwrite once the ring is full.
    cursor: usize,
    served: u64,
    ok: u64,
    errors: u64,
    errors_by_kind: BTreeMap<String, u64>,
    by_heuristic: BTreeMap<String, u64>,
}

impl Default for ServiceStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceStats {
    /// Fresh, all-zero accounting.
    pub fn new() -> Self {
        Self {
            ring: Vec::new(),
            cursor: 0,
            served: 0,
            ok: 0,
            errors: 0,
            errors_by_kind: BTreeMap::new(),
            by_heuristic: BTreeMap::new(),
        }
    }

    /// Record a successfully answered solve request.
    pub fn record_ok(&mut self, heuristic: &str, micros: u64) {
        self.served += 1;
        self.ok += 1;
        *self.by_heuristic.entry(heuristic.to_string()).or_insert(0) += 1;
        self.push_time(micros);
    }

    /// Record an error reply of the given kind.
    pub fn record_error(&mut self, kind: &str, micros: u64) {
        self.served += 1;
        self.errors += 1;
        *self.errors_by_kind.entry(kind.to_string()).or_insert(0) += 1;
        self.push_time(micros);
    }

    fn push_time(&mut self, micros: u64) {
        if self.ring.len() < RING_CAPACITY {
            self.ring.push(micros);
        } else {
            self.ring[self.cursor] = micros;
            self.cursor = (self.cursor + 1) % RING_CAPACITY;
        }
    }

    /// Total requests answered (ok + error).
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Error replies of `kind` so far.
    pub fn errors_of_kind(&self, kind: &str) -> u64 {
        self.errors_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Snapshot the counters and percentile window into a wire report.
    pub fn report(&self, cache_hits: u64, cache_misses: u64, cache_len: usize) -> StatsReport {
        let mut window = self.ring.clone();
        window.sort_unstable();
        let lookups = cache_hits + cache_misses;
        StatsReport {
            served: self.served,
            ok: self.ok,
            errors: self.errors,
            errors_by_kind: self.errors_by_kind.clone(),
            by_heuristic: self.by_heuristic.clone(),
            cache_hits,
            cache_misses,
            cache_len,
            cache_hit_ratio: if lookups == 0 {
                0.0
            } else {
                cache_hits as f64 / lookups as f64
            },
            window: window.len(),
            p50_us: percentile_sorted_u64(&window, 50.0),
            p90_us: percentile_sorted_u64(&window, 90.0),
            p99_us: percentile_sorted_u64(&window, 99.0),
            max_us: window.last().copied().unwrap_or(0),
        }
    }
}

/// Serializable statistics snapshot, the reply to `{"cmd":"stats"}`.
#[derive(Debug, Clone, Serialize)]
pub struct StatsReport {
    /// Requests answered in total.
    pub served: u64,
    /// Successful solve replies.
    pub ok: u64,
    /// Error replies.
    pub errors: u64,
    /// Error replies per error kind.
    pub errors_by_kind: BTreeMap<String, u64>,
    /// Successful replies per canonical heuristic name.
    pub by_heuristic: BTreeMap<String, u64>,
    /// Cache hits over the service lifetime.
    pub cache_hits: u64,
    /// Cache misses over the service lifetime.
    pub cache_misses: u64,
    /// Solutions currently cached.
    pub cache_len: usize,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 before any lookup.
    pub cache_hit_ratio: f64,
    /// Service times currently in the percentile window.
    pub window: usize,
    /// Median service time, microseconds (nearest-rank over the window).
    pub p50_us: u64,
    /// 90th-percentile service time, microseconds.
    pub p90_us: u64,
    /// 99th-percentile service time, microseconds.
    pub p99_us: u64,
    /// Slowest service time in the window, microseconds.
    pub max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        // The shared helper must keep the wire-format conventions this
        // report was built on (nearest rank, 0 for an empty window).
        let w: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted_u64(&w, 50.0), 50);
        assert_eq!(percentile_sorted_u64(&w, 99.0), 99);
        assert_eq!(percentile_sorted_u64(&[7], 50.0), 7);
        assert_eq!(percentile_sorted_u64(&[], 99.0), 0);
        let w = [10, 20, 30];
        assert_eq!(percentile_sorted_u64(&w, 50.0), 20);
        assert_eq!(percentile_sorted_u64(&w, 99.0), 30);
    }

    #[test]
    fn counters_and_report() {
        let mut s = ServiceStats::new();
        s.record_ok("ltf", 100);
        s.record_ok("ltf", 300);
        s.record_ok("rltf", 200);
        s.record_error("parse", 5);
        let r = s.report(3, 1, 2);
        assert_eq!((r.served, r.ok, r.errors), (4, 3, 1));
        assert_eq!(r.by_heuristic["ltf"], 2);
        assert_eq!(r.errors_by_kind["parse"], 1);
        assert_eq!(r.cache_hit_ratio, 0.75);
        assert_eq!(r.window, 4);
        assert_eq!(r.p50_us, 100);
        assert_eq!(r.max_us, 300);
    }

    #[test]
    fn ring_is_bounded() {
        let mut s = ServiceStats::new();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            s.record_ok("ltf", i);
        }
        let r = s.report(0, 0, 0);
        assert_eq!(r.window, RING_CAPACITY);
        // The oldest 10 samples were overwritten.
        assert_eq!(r.max_us, RING_CAPACITY as u64 + 9);
    }
}
