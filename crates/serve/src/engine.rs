//! The service engine: parses request lines, answers from the LRU cache,
//! and dispatches the remaining solves onto the shared `ltf_core::par`
//! pool.
//!
//! # Determinism
//!
//! [`Service::handle_lines`] is *serially equivalent*: responses, cache
//! contents, eviction order and hit/miss counters are exactly what a
//! line-at-a-time loop would produce, regardless of batch size or thread
//! count. Cache decisions and mutations happen serially in line order;
//! only the (deterministic, pure) solve calls in between run in
//! parallel. Service *times* are the one non-deterministic output, and
//! they only ever appear in `{"cmd":"stats"}` replies — solve responses
//! are bit-stable, which is what makes pipe-mode golden tests possible.

use crate::cache::{CacheKey, LruCache};
use crate::proto::{
    parse_request, to_line, ErrResponse, OkResponse, Request, ShardRequest, SolutionWire,
    SolveRequest,
};
use crate::stats::{ServiceStats, StatsReport};
use ltf_baselines::full_solver;
use ltf_core::par::{parallel_map, resolve_threads};
use ltf_core::shard::Shard;
use ltf_core::AlgoConfig;
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Tuning knobs of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for batched solves; `0` = all cores.
    pub threads: usize,
    /// LRU capacity in cached solutions; `0` disables caching.
    pub cache_capacity: usize,
    /// Reject graphs with more tasks than this (`too-large`).
    pub max_tasks: usize,
    /// Reject graphs with more edges than this (`too-large`).
    pub max_edges: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_capacity: 256,
            max_tasks: 10_000,
            max_edges: 100_000,
        }
    }
}

/// One registered heuristic as reported by `{"cmd":"heuristics"}`.
#[derive(Debug, Clone, Serialize)]
pub struct HeuristicInfo {
    /// Canonical name.
    pub name: String,
    /// Accepted aliases.
    pub aliases: Vec<String>,
}

/// Reply to `{"cmd":"heuristics"}`.
#[derive(Debug, Clone, Serialize)]
struct HeuristicsReply {
    status: String,
    heuristics: Vec<HeuristicInfo>,
}

/// Reply to `{"cmd":"stats"}`.
#[derive(Debug, Clone, Serialize)]
struct StatsReply {
    status: String,
    stats: StatsReport,
}

/// The scheduler service: registry name table, solution cache and
/// accounting. One instance serves any number of independent requests;
/// the graph/platform travel *in* each request, so no instance state
/// outlives a line except the cache and the counters.
pub struct Service {
    config: ServiceConfig,
    names: Vec<HeuristicInfo>,
    cache: LruCache,
    stats: ServiceStats,
}

/// A solve line after the serial decode pass.
struct SolveSlot {
    req: Box<SolveRequest>,
    cfg: AlgoConfig,
    canonical: String,
    key: CacheKey,
    /// Index into the batch's parallel job list; `None` when the answer
    /// is expected from the cache.
    job: Option<usize>,
    /// Microseconds spent decoding and classifying the line.
    decode_us: u64,
}

/// One line's fate after the serial decode pass.
enum Slot {
    /// Response already final (control reply or error).
    Done(String),
    /// Needs the cache/solve resolution pass.
    Solve(SolveSlot),
}

impl Service {
    /// A service over the full built-in strategy family
    /// (`ltf_baselines::full_solver`).
    pub fn new(config: ServiceConfig) -> Self {
        // Probe the registry once with a throwaway instance to learn the
        // canonical-name/alias table; per-request lookups then resolve
        // names without building a solver.
        let g = ltf_graph::generate::fig1_diamond();
        let p = ltf_platform::Platform::fig1_platform();
        let solver = full_solver(&g, &p);
        let names = solver
            .heuristics()
            .map(|h| HeuristicInfo {
                name: h.name().to_string(),
                aliases: h.aliases().iter().map(|a| a.to_string()).collect(),
            })
            .collect();
        Self {
            config,
            names,
            cache: LruCache::new(0),
            stats: ServiceStats::new(),
        }
        .with_cache_capacity()
    }

    fn with_cache_capacity(mut self) -> Self {
        self.cache = LruCache::new(self.config.cache_capacity);
        self
    }

    /// Registered heuristics (canonical name + aliases).
    pub fn heuristics(&self) -> &[HeuristicInfo] {
        &self.names
    }

    /// Resolve a request's heuristic name to its canonical form,
    /// mirroring the registry's precedence: canonical names win over
    /// aliases, both case-insensitively.
    pub fn canonicalize(&self, name: &str) -> Option<&str> {
        self.names
            .iter()
            .find(|h| h.name.eq_ignore_ascii_case(name))
            .or_else(|| {
                self.names
                    .iter()
                    .find(|h| h.aliases.iter().any(|a| a.eq_ignore_ascii_case(name)))
            })
            .map(|h| h.name.as_str())
    }

    /// Current statistics snapshot.
    pub fn stats_report(&self) -> StatsReport {
        self.stats
            .report(self.cache.hits(), self.cache.misses(), self.cache.len())
    }

    /// Direct read access to the cache (tests, introspection).
    pub fn cache(&self) -> &LruCache {
        &self.cache
    }

    /// Answer one request line. Never panics on malformed input; every
    /// line gets exactly one response line.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.handle_lines(std::slice::from_ref(&line))
            .pop()
            .expect("one response per line")
    }

    /// Answer a batch of request lines, one response per line, in order.
    /// Cache misses within the batch are solved concurrently on the
    /// `ltf_core::par` pool; everything observable is serially
    /// equivalent (see the module docs).
    ///
    /// ```
    /// use ltf_serve::{Service, ServiceConfig};
    ///
    /// let mut svc = Service::new(ServiceConfig::default());
    /// let replies = svc.handle_lines(&[
    ///     r#"{"cmd":"heuristics"}"#,
    ///     "definitely not json",
    /// ]);
    /// // One reply per line, in order; a bad line yields a structured
    /// // error instead of poisoning the batch.
    /// assert_eq!(replies.len(), 2);
    /// assert!(replies[0].contains(r#""status":"ok""#));
    /// assert!(replies[1].contains(r#""kind":"parse""#));
    /// ```
    pub fn handle_lines<S: AsRef<str>>(&mut self, lines: &[S]) -> Vec<String> {
        // Pass 1 (serial, line order): decode, classify, and decide which
        // lines need a fresh solve. `pending` de-duplicates identical
        // misses inside the batch: the serial replay would solve the
        // first and answer the rest from cache.
        let mut slots = Vec::with_capacity(lines.len());
        let mut jobs: Vec<(CacheKey, Box<SolveRequest>, AlgoConfig, String)> = Vec::new();
        let mut pending: HashMap<CacheKey, usize> = HashMap::new();
        for line in lines {
            slots.push(self.classify(line.as_ref(), &mut jobs, &mut pending));
        }

        // Pass 2 (parallel): the actual scheduling work.
        let threads = resolve_threads(self.config.threads);
        let solved: Vec<(Result<SolutionWire, ErrResponse>, u64)> =
            parallel_map(&jobs, threads, |(_, req, cfg, canonical)| {
                let t0 = Instant::now();
                let solver = full_solver(&req.graph, &req.platform);
                let outcome = match solver.solve(canonical, cfg) {
                    Ok(sol) => Ok(SolutionWire::from_solution(&sol)),
                    Err(d) => Err(ErrResponse::from_diagnostics(None, &d)),
                };
                (outcome, t0.elapsed().as_micros() as u64)
            });
        let results: HashMap<&CacheKey, &(Result<SolutionWire, ErrResponse>, u64)> = jobs
            .iter()
            .map(|(key, ..)| key)
            .zip(solved.iter())
            .collect();

        // Pass 3 (serial, line order): cache counters, insertions and
        // response assembly — the order-sensitive part.
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Done(line) => line,
                Slot::Solve(s) => self.resolve(s, &results),
            })
            .collect()
    }

    fn classify(
        &mut self,
        line: &str,
        jobs: &mut Vec<(CacheKey, Box<SolveRequest>, AlgoConfig, String)>,
        pending: &mut HashMap<CacheKey, usize>,
    ) -> Slot {
        let t0 = Instant::now();
        let req = match parse_request(line) {
            Ok(Request::Stats) => {
                return Slot::Done(to_line(&StatsReply {
                    status: "ok".to_string(),
                    stats: self.stats_report(),
                }))
            }
            Ok(Request::Heuristics) => {
                return Slot::Done(to_line(&HeuristicsReply {
                    status: "ok".to_string(),
                    heuristics: self.names.clone(),
                }))
            }
            Ok(Request::Shard(req)) => {
                let line = self.handle_shard(&req);
                let us = t0.elapsed().as_micros() as u64;
                if line.starts_with(r#"{"ok":true"#) {
                    self.stats.record_ok("campaign-shard", us);
                } else {
                    self.stats.record_error("shard-failed", us);
                }
                return Slot::Done(line);
            }
            Ok(Request::Solve(req)) => req,
            Err((kind, message, id)) => {
                self.stats
                    .record_error(kind, t0.elapsed().as_micros() as u64);
                return Slot::Done(to_line(&ErrResponse::new(id, kind, None, message)));
            }
        };
        let id = req.id;
        let err = |service: &mut Self, kind: &str, heuristic: Option<String>, message: String| {
            service
                .stats
                .record_error(kind, t0.elapsed().as_micros() as u64);
            Slot::Done(to_line(&ErrResponse::new(id, kind, heuristic, message)))
        };
        if req.graph.num_tasks() > self.config.max_tasks
            || req.graph.num_edges() > self.config.max_edges
        {
            return err(
                self,
                "too-large",
                None,
                format!(
                    "graph has {} tasks / {} edges, limits are {} / {}",
                    req.graph.num_tasks(),
                    req.graph.num_edges(),
                    self.config.max_tasks,
                    self.config.max_edges
                ),
            );
        }
        let Some(canonical) = self.canonicalize(&req.heuristic).map(str::to_string) else {
            return err(
                self,
                "unknown-heuristic",
                Some(req.heuristic.clone()),
                format!("no heuristic named {:?} is registered", req.heuristic),
            );
        };
        let cfg = match req.config.to_algo() {
            Ok(cfg) => cfg,
            Err(msg) => return err(self, "bad-request", Some(canonical), msg),
        };
        let key = CacheKey::new(&req.graph, &req.platform, &canonical, &cfg);
        let job = if self.cache.contains(&key) || pending.contains_key(&key) {
            None
        } else {
            pending.insert(key.clone(), jobs.len());
            jobs.push((key.clone(), req.clone(), cfg.clone(), canonical.clone()));
            Some(jobs.len() - 1)
        };
        Slot::Solve(SolveSlot {
            req,
            cfg,
            canonical,
            key,
            job,
            decode_us: t0.elapsed().as_micros() as u64,
        })
    }

    /// Compute one campaign shard inline and render the one-line reply:
    /// `{"ok":true,"id":...,"shard":"K/N","items":N,"results":[...]}` on
    /// success, `{"ok":false,"id":...,"error":KIND,"message":...}` on
    /// failure. Runs serially within the request (a shard is a batch of
    /// work already; the compute parallelizes internally over
    /// [`ServiceConfig::threads`]), so responses stay bit-stable and the
    /// campaign merge can cross-check determinism.
    fn handle_shard(&self, req: &ShardRequest) -> String {
        let reply = |entries: Vec<(&str, Value)>| {
            to_line(&Value::Map(
                entries
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ))
        };
        let id = match req.id {
            Some(id) => Value::UInt(id),
            None => Value::Null,
        };
        let fail = |kind: &str, message: String| {
            reply(vec![
                ("ok", Value::Bool(false)),
                ("id", id.clone()),
                ("error", Value::Str(kind.to_string())),
                ("message", Value::Str(message)),
            ])
        };
        let shard: Shard = match req.shard.parse() {
            Ok(s) => s,
            Err(e) => return fail("bad-request", e),
        };
        let threads = resolve_threads(self.config.threads);
        let mut results = Vec::new();
        // SLO campaigns (specs with a `failure` block) shard trace
        // blocks; plain campaigns shard front enumerations. Either way
        // the reply carries the results as a JSON array.
        let run = if req.spec.failure.is_some() {
            ltf_experiments::campaign::run_slo_shard(&req.spec, shard, threads, None, |r| {
                results.push(r.to_value())
            })
        } else {
            ltf_experiments::campaign::run_shard(&req.spec, shard, threads, None, |r| {
                results.push(r.to_value())
            })
        };
        match run {
            Ok(items) => reply(vec![
                ("ok", Value::Bool(true)),
                ("id", id),
                ("shard", Value::Str(shard.to_string())),
                ("items", Value::UInt(items as u64)),
                ("results", Value::Seq(results)),
            ]),
            Err(e) => fail("shard-failed", e),
        }
    }

    fn resolve(
        &mut self,
        s: SolveSlot,
        results: &HashMap<&CacheKey, &(Result<SolutionWire, ErrResponse>, u64)>,
    ) -> String {
        if let Some(wire) = self.cache.get(&s.key) {
            // Pre-existing entry or a batch-mate's successful solve.
            self.stats.record_ok(&s.canonical, s.decode_us);
            return to_line(&OkResponse::new(s.req.id, true, wire));
        }
        // Miss (counted by the failed `get`). Three cases: this line is
        // the primary solver of its key; a duplicate of a primary that
        // failed (errors are not cached, the serial replay fails again
        // identically); or the key's entry was evicted by batch-mates'
        // inserts after the classification pass — then the serial replay
        // would re-solve, so do exactly that inline (deterministic).
        let (outcome, solve_us) = match results.get(&s.key).copied() {
            Some((outcome, us)) if s.job.is_some() || outcome.is_err() => (outcome.clone(), *us),
            _ => {
                let t0 = Instant::now();
                let solver = full_solver(&s.req.graph, &s.req.platform);
                let outcome = match solver.solve(&s.canonical, &s.cfg) {
                    Ok(sol) => Ok(SolutionWire::from_solution(&sol)),
                    Err(d) => Err(ErrResponse::from_diagnostics(None, &d)),
                };
                (outcome, t0.elapsed().as_micros() as u64)
            }
        };
        match outcome {
            Ok(wire) => {
                self.cache.insert(s.key.clone(), wire.clone());
                self.stats.record_ok(&s.canonical, s.decode_us + solve_us);
                to_line(&OkResponse::new(s.req.id, false, wire))
            }
            Err(mut err) => {
                err.id = s.req.id;
                err.heuristic = Some(s.canonical.clone());
                self.stats.record_error(&err.kind, s.decode_us + solve_us);
                to_line(&err)
            }
        }
    }
}
