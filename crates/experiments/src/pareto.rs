//! Pareto-front runner behind the `ltf-experiments pareto` subcommand:
//! instance selection (the paper's worked examples or a calibrated random
//! workload), front enumeration through the full `Solver` registry, witness
//! re-validation, the CSV / JSON-lines record rendering, and the
//! thousands-of-instances [`workload_sweep`] with streamed, checkpointed
//! output.

use crate::checkpoint::{resume_chunks, Checkpoint};
use crate::figures::window_for;
use crate::workload::{gen_instance, PaperWorkload};
use ltf_baselines::full_solver;
use ltf_core::search::pareto::{pareto_front, pareto_front_all, ParetoOptions, ParetoPoint};
use ltf_graph::generate::{fig1_diamond, fig2_workflow, fig2_workflow_variant};
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::validate;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Which instance the front is enumerated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParetoInstance {
    /// Fig. 1's motivating 4-task diamond on the paper's 4 processors.
    Fig1,
    /// Fig. 2's text-pinned 7-task reconstruction on 10 unit processors.
    Fig2,
    /// The Fig. 2 variant (`E(t2) = 3`, DESIGN.md §2.10) on 8 unit
    /// processors — the repo's canonical worked example.
    Fig2Variant,
    /// One calibrated random instance of the paper's §5 workload.
    Workload,
}

impl ParetoInstance {
    /// Parse a CLI `--graph` value.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "fig1" => Some(Self::Fig1),
            "fig2" => Some(Self::Fig2),
            "fig2-variant" => Some(Self::Fig2Variant),
            "workload" => Some(Self::Workload),
            _ => None,
        }
    }

    /// Materialize the instance. `seed` and `utilization` only affect
    /// [`ParetoInstance::Workload`].
    pub fn build(self, seed: u64, utilization: f64) -> (TaskGraph, Platform, String) {
        match self {
            Self::Fig1 => (
                fig1_diamond(),
                Platform::fig1_platform(),
                "fig1".to_string(),
            ),
            Self::Fig2 => (
                fig2_workflow(),
                Platform::homogeneous(10, 1.0, 1.0),
                "fig2".to_string(),
            ),
            Self::Fig2Variant => (
                fig2_workflow_variant(),
                Platform::homogeneous(8, 1.0, 1.0),
                "fig2-variant".to_string(),
            ),
            Self::Workload => {
                let wl = PaperWorkload {
                    utilization,
                    ..Default::default()
                };
                let inst = gen_instance(&wl, seed);
                (
                    inst.graph,
                    inst.platform,
                    format!("paper-workload seed={seed:#x}"),
                )
            }
        }
    }
}

/// Enumerate the front on `(g, p)` with heuristic `algo` (a registry name,
/// or `"all"` for the cross-heuristic merge over the full registry —
/// the paper's heuristics plus every baseline).
pub fn enumerate(
    g: &TaskGraph,
    p: &Platform,
    algo: &str,
    opts: &ParetoOptions,
) -> Result<Vec<ParetoPoint>, String> {
    let solver = full_solver(g, p);
    if algo == "all" {
        Ok(pareto_front_all(&solver, opts))
    } else {
        let h = solver.heuristic(algo).ok_or_else(|| {
            format!(
                "unknown heuristic {algo:?} (registered: {}, or \"all\")",
                solver.names().join(", ")
            )
        })?;
        Ok(pareto_front(g, p, h, opts))
    }
}

/// Re-validate every witness schedule against the platform prefix it was
/// computed on. Returns the first violation rendered as text.
pub fn validate_front(g: &TaskGraph, p: &Platform, front: &[ParetoPoint]) -> Result<(), String> {
    for pt in front {
        let prefix = p.prefix(pt.platform_procs);
        if let Err(violations) = validate(g, &prefix, &pt.solution.schedule) {
            let first = violations
                .first()
                .map(|v| v.to_string())
                .unwrap_or_default();
            return Err(format!("witness of point [{pt}] is invalid: {first}"));
        }
    }
    Ok(())
}

/// CSV header matching [`csv_line`].
pub const CSV_HEADER: &str =
    "instance,heuristic,epsilon,procs,platform_procs,period,throughput,latency,stages,comms";

/// One CSV row per front point (streamed by the CLI as points are
/// written).
pub fn csv_line(instance: &str, pt: &ParetoPoint) -> String {
    let o = &pt.objectives;
    format!(
        "{},{},{},{},{},{:.6},{:.6},{:.6},{},{}",
        instance.replace(',', ";"),
        pt.heuristic,
        o.epsilon,
        o.procs,
        pt.platform_procs,
        o.period,
        o.throughput(),
        o.latency,
        pt.solution.metrics.stages,
        pt.solution.metrics.comm_count,
    )
}

/// One compact front point of a workload-scale sweep: the objectives and
/// summary metrics, without the witness schedule (a thousand-instance
/// sweep cannot afford to journal full schedules, and the witnesses are
/// re-validated before the row is emitted anyway).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontRow {
    /// Instance seed the front was enumerated on.
    pub seed: u64,
    /// Heuristic that reached the point.
    pub heuristic: String,
    /// Fault-tolerance degree ε.
    pub epsilon: u8,
    /// Distinct processors the witness uses.
    pub procs: usize,
    /// Platform prefix the witness was scheduled on.
    pub platform_procs: usize,
    /// Iteration period Δ.
    pub period: f64,
    /// Guaranteed pipeline latency.
    pub latency: f64,
    /// Pipeline stage count of the witness.
    pub stages: u32,
    /// Inter-processor messages per data set.
    pub comms: usize,
}

impl FrontRow {
    /// Compact one front point, tagged with its instance seed.
    pub fn new(seed: u64, pt: &ParetoPoint) -> Self {
        let o = &pt.objectives;
        Self {
            seed,
            heuristic: pt.heuristic.clone(),
            epsilon: o.epsilon,
            procs: o.procs,
            platform_procs: pt.platform_procs,
            period: o.period,
            latency: o.latency,
            stages: pt.solution.metrics.stages,
            comms: pt.solution.metrics.comm_count,
        }
    }

    /// CSV row matching [`SWEEP_CSV_HEADER`].
    pub fn csv_line(&self) -> String {
        format!(
            "{:#x},{},{},{},{},{:.6},{:.6},{:.6},{},{}",
            self.seed,
            self.heuristic,
            self.epsilon,
            self.procs,
            self.platform_procs,
            self.period,
            1.0 / self.period,
            self.latency,
            self.stages,
            self.comms,
        )
    }
}

/// CSV header matching [`FrontRow::csv_line`].
pub const SWEEP_CSV_HEADER: &str =
    "seed,heuristic,epsilon,procs,platform_procs,period,throughput,latency,stages,comms";

/// Configuration of a workload-scale front sweep.
#[derive(Debug, Clone)]
pub struct WorkloadSweepConfig {
    /// Number of random §5 instances to enumerate fronts on.
    pub instances: usize,
    /// Base seed; instance seeds derive deterministically from it.
    pub seed: u64,
    /// Target platform utilization of the generated instances.
    pub utilization: f64,
    /// Registry name of the heuristic, or `"all"` for the merge.
    pub algo: String,
    /// Per-instance enumeration options (threads is used *across*
    /// instances here; each per-instance enumeration stays serial).
    pub opts: ParetoOptions,
    /// Worker threads across instances.
    pub threads: usize,
}

/// Enumerate the front of every instance of a workload-scale sweep,
/// streaming each instance's rows through `emit` as soon as its window
/// completes, in instance order. With a `journal`, completed instances
/// are replayed on restart (their rows go through `emit` first, in the
/// original order) and only pending instances are recomputed — so a
/// killed sweep resumes without losing more than one window of work, and
/// the emitted row sequence is identical to an uninterrupted run's. At
/// no point are more than `window_for(threads)` instances' rows held in
/// memory.
///
/// Every fresh witness is re-validated against its platform prefix before
/// its row is journalled or emitted; a validation failure is a scheduler
/// bug and returns an error naming the instance.
pub fn workload_sweep(
    cfg: &WorkloadSweepConfig,
    journal: Option<&Path>,
    mut emit: impl FnMut(&FrontRow),
) -> Result<usize, String> {
    // The key pins the full run configuration — heuristic, utilization
    // and every enumeration option — so a journal shared across `--algo`
    // or `--util` runs neither replays foreign rows nor double-counts:
    // only records matching this exact configuration (and this run's
    // seed set) are replayed; everything else stays pending under its
    // own keys.
    let o = &cfg.opts;
    let sig = format!(
        "algo={}:util={}:me={:?}:ml={:?}:mp={:?}:rs={}:it={}:os={:#x}",
        cfg.algo,
        cfg.utilization,
        o.max_epsilon,
        o.max_latency,
        o.max_procs,
        o.relax_steps,
        o.iterations,
        o.seed
    );
    let keyed = |seed: u64| format!("pareto:{sig}:seed={seed:#018x}");
    let seeds: Vec<u64> = (0..cfg.instances as u64)
        .map(|k| cfg.seed.wrapping_add(k))
        .collect();
    let expected: std::collections::HashSet<String> = seeds.iter().map(|s| keyed(*s)).collect();
    let mut emitted = 0usize;
    let mut ckpt = match journal {
        Some(path) => Some(
            Checkpoint::open(path, |key, value| {
                if !expected.contains(key) {
                    return false; // another run configuration shares the journal
                }
                let serde::Value::Seq(rows) = value else {
                    eprintln!("warning: checkpoint: record {key} has the wrong shape; recomputing");
                    return false;
                };
                let decoded: Option<Vec<FrontRow>> =
                    rows.iter().map(|r| FrontRow::from_value(r).ok()).collect();
                match decoded {
                    Some(rows) => {
                        for row in &rows {
                            emitted += 1;
                            emit(row);
                        }
                        true
                    }
                    None => {
                        eprintln!("warning: checkpoint: record {key} does not decode; recomputing");
                        false
                    }
                }
            })
            .map_err(|e| format!("checkpoint: {e}"))?,
        ),
        None => None,
    };
    let wl = PaperWorkload {
        utilization: cfg.utilization,
        ..Default::default()
    };
    // Reject a bad --algo before sweeping anything (enumerate would only
    // notice per instance, deep inside the pool).
    if cfg.algo != "all" {
        let probe = gen_instance(&wl, cfg.seed);
        let solver = full_solver(&probe.graph, &probe.platform);
        if solver.heuristic(&cfg.algo).is_none() {
            return Err(format!(
                "unknown heuristic {:?} (registered: {}, or \"all\")",
                cfg.algo,
                solver.names().join(", ")
            ));
        }
    }
    // One serial enumeration per instance; the parallelism lives across
    // instances (nested pools would oversubscribe the machine).
    let mut popts = cfg.opts.clone();
    popts.threads = 1;
    let compute = |seed: &u64| -> Vec<FrontRow> {
        let inst = gen_instance(&wl, *seed);
        let front =
            enumerate(&inst.graph, &inst.platform, &cfg.algo, &popts).expect("algo pre-checked");
        // A witness that fails structural validation is a scheduler bug;
        // panicking (propagated with its payload by the worker pool)
        // beats journalling a bogus row as completed work.
        if let Err(e) = validate_front(&inst.graph, &inst.platform, &front) {
            panic!("instance seed={seed:#x}: {e}");
        }
        front.iter().map(|pt| FrontRow::new(*seed, pt)).collect()
    };
    resume_chunks(
        &seeds,
        cfg.threads,
        window_for(cfg.threads),
        &mut ckpt,
        |s| keyed(*s),
        compute,
        |_, rows| {
            for row in &rows {
                emitted += 1;
                emit(row);
            }
        },
    )
    .map_err(|e| format!("checkpoint: {e}"))?;
    Ok(emitted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_all_instances() {
        assert_eq!(ParetoInstance::parse("fig1"), Some(ParetoInstance::Fig1));
        assert_eq!(ParetoInstance::parse("fig2"), Some(ParetoInstance::Fig2));
        assert_eq!(
            ParetoInstance::parse("fig2-variant"),
            Some(ParetoInstance::Fig2Variant)
        );
        assert_eq!(
            ParetoInstance::parse("workload"),
            Some(ParetoInstance::Workload)
        );
        assert_eq!(ParetoInstance::parse("fig9"), None);
    }

    #[test]
    fn fig1_front_enumerates_and_validates() {
        let (g, p, label) = ParetoInstance::Fig1.build(0, 0.25);
        let front = enumerate(&g, &p, "rltf", &ParetoOptions::default()).unwrap();
        assert!(!front.is_empty());
        validate_front(&g, &p, &front).expect("witnesses valid");
        let line = csv_line(&label, &front[0]);
        assert_eq!(line.split(',').count(), CSV_HEADER.split(',').count());
        assert!(line.starts_with("fig1,rltf,"));
    }

    #[test]
    fn cross_heuristic_merge_through_full_registry() {
        let (g, p, _) = ParetoInstance::Fig1.build(0, 0.25);
        let front = enumerate(&g, &p, "all", &ParetoOptions::default()).unwrap();
        assert!(!front.is_empty());
        validate_front(&g, &p, &front).expect("witnesses valid");
    }

    #[test]
    fn unknown_heuristic_is_an_error() {
        let (g, p, _) = ParetoInstance::Fig1.build(0, 0.25);
        let err = enumerate(&g, &p, "zeus", &ParetoOptions::default()).unwrap_err();
        assert!(err.contains("zeus") && err.contains("rltf"));
    }
}
