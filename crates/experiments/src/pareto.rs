//! Pareto-front runner behind the `ltf-experiments pareto` subcommand:
//! instance selection (the paper's worked examples or a calibrated random
//! workload), front enumeration through the full `Solver` registry, witness
//! re-validation, and the CSV / JSON-lines record rendering.

use crate::workload::{gen_instance, PaperWorkload};
use ltf_baselines::full_solver;
use ltf_core::search::pareto::{pareto_front, pareto_front_all, ParetoOptions, ParetoPoint};
use ltf_graph::generate::{fig1_diamond, fig2_workflow, fig2_workflow_variant};
use ltf_graph::TaskGraph;
use ltf_platform::Platform;
use ltf_schedule::validate;

/// Which instance the front is enumerated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParetoInstance {
    /// Fig. 1's motivating 4-task diamond on the paper's 4 processors.
    Fig1,
    /// Fig. 2's text-pinned 7-task reconstruction on 10 unit processors.
    Fig2,
    /// The Fig. 2 variant (`E(t2) = 3`, DESIGN.md §2.10) on 8 unit
    /// processors — the repo's canonical worked example.
    Fig2Variant,
    /// One calibrated random instance of the paper's §5 workload.
    Workload,
}

impl ParetoInstance {
    /// Parse a CLI `--graph` value.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "fig1" => Some(Self::Fig1),
            "fig2" => Some(Self::Fig2),
            "fig2-variant" => Some(Self::Fig2Variant),
            "workload" => Some(Self::Workload),
            _ => None,
        }
    }

    /// Materialize the instance. `seed` and `utilization` only affect
    /// [`ParetoInstance::Workload`].
    pub fn build(self, seed: u64, utilization: f64) -> (TaskGraph, Platform, String) {
        match self {
            Self::Fig1 => (
                fig1_diamond(),
                Platform::fig1_platform(),
                "fig1".to_string(),
            ),
            Self::Fig2 => (
                fig2_workflow(),
                Platform::homogeneous(10, 1.0, 1.0),
                "fig2".to_string(),
            ),
            Self::Fig2Variant => (
                fig2_workflow_variant(),
                Platform::homogeneous(8, 1.0, 1.0),
                "fig2-variant".to_string(),
            ),
            Self::Workload => {
                let wl = PaperWorkload {
                    utilization,
                    ..Default::default()
                };
                let inst = gen_instance(&wl, seed);
                (
                    inst.graph,
                    inst.platform,
                    format!("paper-workload seed={seed:#x}"),
                )
            }
        }
    }
}

/// Enumerate the front on `(g, p)` with heuristic `algo` (a registry name,
/// or `"all"` for the cross-heuristic merge over the full registry —
/// the paper's heuristics plus every baseline).
pub fn enumerate(
    g: &TaskGraph,
    p: &Platform,
    algo: &str,
    opts: &ParetoOptions,
) -> Result<Vec<ParetoPoint>, String> {
    let solver = full_solver(g, p);
    if algo == "all" {
        Ok(pareto_front_all(&solver, opts))
    } else {
        let h = solver.heuristic(algo).ok_or_else(|| {
            format!(
                "unknown heuristic {algo:?} (registered: {}, or \"all\")",
                solver.names().join(", ")
            )
        })?;
        Ok(pareto_front(g, p, h, opts))
    }
}

/// Re-validate every witness schedule against the platform prefix it was
/// computed on. Returns the first violation rendered as text.
pub fn validate_front(g: &TaskGraph, p: &Platform, front: &[ParetoPoint]) -> Result<(), String> {
    for pt in front {
        let prefix = p.prefix(pt.platform_procs);
        if let Err(violations) = validate(g, &prefix, &pt.solution.schedule) {
            let first = violations
                .first()
                .map(|v| v.to_string())
                .unwrap_or_default();
            return Err(format!("witness of point [{pt}] is invalid: {first}"));
        }
    }
    Ok(())
}

/// CSV header matching [`csv_line`].
pub const CSV_HEADER: &str =
    "instance,heuristic,epsilon,procs,platform_procs,period,throughput,latency,stages,comms";

/// One CSV row per front point (streamed by the CLI as points are
/// written).
pub fn csv_line(instance: &str, pt: &ParetoPoint) -> String {
    let o = &pt.objectives;
    format!(
        "{},{},{},{},{},{:.6},{:.6},{:.6},{},{}",
        instance.replace(',', ";"),
        pt.heuristic,
        o.epsilon,
        o.procs,
        pt.platform_procs,
        o.period,
        o.throughput(),
        o.latency,
        pt.solution.metrics.stages,
        pt.solution.metrics.comm_count,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_all_instances() {
        assert_eq!(ParetoInstance::parse("fig1"), Some(ParetoInstance::Fig1));
        assert_eq!(ParetoInstance::parse("fig2"), Some(ParetoInstance::Fig2));
        assert_eq!(
            ParetoInstance::parse("fig2-variant"),
            Some(ParetoInstance::Fig2Variant)
        );
        assert_eq!(
            ParetoInstance::parse("workload"),
            Some(ParetoInstance::Workload)
        );
        assert_eq!(ParetoInstance::parse("fig9"), None);
    }

    #[test]
    fn fig1_front_enumerates_and_validates() {
        let (g, p, label) = ParetoInstance::Fig1.build(0, 0.25);
        let front = enumerate(&g, &p, "rltf", &ParetoOptions::default()).unwrap();
        assert!(!front.is_empty());
        validate_front(&g, &p, &front).expect("witnesses valid");
        let line = csv_line(&label, &front[0]);
        assert_eq!(line.split(',').count(), CSV_HEADER.split(',').count());
        assert!(line.starts_with("fig1,rltf,"));
    }

    #[test]
    fn cross_heuristic_merge_through_full_registry() {
        let (g, p, _) = ParetoInstance::Fig1.build(0, 0.25);
        let front = enumerate(&g, &p, "all", &ParetoOptions::default()).unwrap();
        assert!(!front.is_empty());
        validate_front(&g, &p, &front).expect("witnesses valid");
    }

    #[test]
    fn unknown_heuristic_is_an_error() {
        let (g, p, _) = ParetoInstance::Fig1.build(0, 0.25);
        let err = enumerate(&g, &p, "zeus", &ParetoOptions::default()).unwrap_err();
        assert!(err.contains("zeus") && err.contains("rltf"));
    }
}
