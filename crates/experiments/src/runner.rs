//! Parallel experiment execution (scoped worker pool, shared with the
//! Pareto enumerator via [`ltf_core::par`]) and per-instance measurement
//! records.

use crate::workload::{gen_instance, Instance, PaperWorkload};
use ltf_core::{AlgoConfig, FaultFree, Heuristic, Ltf, PreparedInstance, Rltf};
use ltf_schedule::{failures, CrashSet, Schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// Everything measured on one (instance, algorithm) pair.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Instance seed.
    pub seed: u64,
    /// Target granularity of the instance.
    pub granularity: f64,
    /// Fault-tolerance degree.
    pub epsilon: u8,
    /// Algorithm name (`LTF`, `R-LTF`, `FF`).
    pub algo: String,
    /// Whether a schedule satisfying the throughput constraint was found.
    pub feasible: bool,
    /// Pipeline stage count `S` (0 when infeasible).
    pub stages: u32,
    /// Guaranteed latency `(2S − 1)·Δ`.
    pub latency_ub: f64,
    /// Effective latency with no failures.
    pub latency_0: f64,
    /// Mean effective latency over the crash draws (`None` when no draws
    /// were requested or nothing survived).
    pub latency_crash: Option<f64>,
    /// Crash draws whose pattern was not survived (should stay 0 while
    /// `c ≤ ε`).
    pub crash_losses: usize,
    /// Inter-processor messages per data set.
    pub comms: usize,
    /// Number of processors used.
    pub procs_used: usize,
    /// Scheduling wall time in microseconds.
    pub sched_micros: u64,
}

impl RunRecord {
    /// Decode a record replayed from a checkpoint journal (the inverse of
    /// the `Serialize` derive; the vendored serde is serialize-first, so
    /// each journalled type decodes its own [`serde::Value`] tree).
    /// `None` when a field is missing or has the wrong shape.
    pub fn from_value(v: &serde::Value) -> Option<Self> {
        use crate::checkpoint::{as_bool, as_f64, as_str, as_u64, field};
        Some(Self {
            seed: as_u64(field(v, "seed")?)?,
            granularity: as_f64(field(v, "granularity")?)?,
            epsilon: as_u64(field(v, "epsilon")?)? as u8,
            algo: as_str(field(v, "algo")?)?.to_string(),
            feasible: as_bool(field(v, "feasible")?)?,
            stages: as_u64(field(v, "stages")?)? as u32,
            latency_ub: as_f64(field(v, "latency_ub")?)?,
            latency_0: as_f64(field(v, "latency_0")?)?,
            latency_crash: match field(v, "latency_crash")? {
                serde::Value::Null => None,
                other => Some(as_f64(other)?),
            },
            crash_losses: as_u64(field(v, "crash_losses")?)? as usize,
            comms: as_u64(field(v, "comms")?)? as usize,
            procs_used: as_u64(field(v, "procs_used")?)? as usize,
            sched_micros: as_u64(field(v, "sched_micros")?)?,
        })
    }
}

/// Measure one heuristic on one instance, with `crash_draws` random crash
/// sets of size `crashes` (drawn deterministically from `seed`). `label`
/// names the algorithm in the record (the figure builders key on the
/// paper's display names `R-LTF`/`LTF`/`FF`). The timing covers the
/// schedule computation including the instance's lazy derivations (levels,
/// reversed graph), matching what the legacy free functions measured.
pub fn measure(
    inst: &Instance,
    h: &dyn Heuristic,
    label: &str,
    seed: u64,
    granularity: f64,
    crashes: usize,
    crash_draws: usize,
) -> RunRecord {
    let cfg = AlgoConfig::new(inst.epsilon, inst.period).seeded(seed);
    let prep = PreparedInstance::new(&inst.graph, &inst.platform);
    let t0 = Instant::now();
    let sched = h.schedule(&prep, &cfg);
    let sched_micros = t0.elapsed().as_micros() as u64;
    record_from(
        sched.ok(),
        inst,
        label,
        seed,
        granularity,
        crashes,
        crash_draws,
        sched_micros,
    )
}

/// Measure the fault-free reference (R-LTF, ε = 0) on one instance.
pub fn measure_fault_free(inst: &Instance, seed: u64, granularity: f64) -> RunRecord {
    let cfg = AlgoConfig::new(inst.epsilon, inst.period).seeded(seed);
    let prep = PreparedInstance::new(&inst.graph, &inst.platform);
    let t0 = Instant::now();
    let sched = FaultFree.schedule(&prep, &cfg);
    let sched_micros = t0.elapsed().as_micros() as u64;
    record_from(
        sched.ok(),
        inst,
        "FF",
        seed,
        granularity,
        0,
        0,
        sched_micros,
    )
}

#[allow(clippy::too_many_arguments)]
fn record_from(
    sched: Option<Schedule>,
    inst: &Instance,
    algo: &str,
    seed: u64,
    granularity: f64,
    crashes: usize,
    crash_draws: usize,
    sched_micros: u64,
) -> RunRecord {
    let mut rec = RunRecord {
        seed,
        granularity,
        epsilon: inst.epsilon,
        algo: algo.to_string(),
        feasible: false,
        stages: 0,
        latency_ub: 0.0,
        latency_0: 0.0,
        latency_crash: None,
        crash_losses: 0,
        comms: 0,
        procs_used: 0,
        sched_micros,
    };
    let Some(s) = sched else {
        return rec;
    };
    let g = &inst.graph;
    let m = inst.platform.num_procs();
    rec.feasible = true;
    rec.stages = s.num_stages();
    rec.latency_ub = s.latency_upper_bound();
    rec.latency_0 = failures::effective_latency(g, &s, &CrashSet::empty(m))
        .expect("no-crash execution always produces");
    rec.comms = s.comm_count();
    rec.procs_used = s.procs_used();
    if crashes > 0 && crash_draws > 0 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CA5E);
        let mut sum = 0.0;
        let mut n = 0usize;
        for _ in 0..crash_draws {
            let cs = failures::sample_crash_set(m, crashes, &mut |b| rng.gen_range(0..b));
            match failures::effective_latency(g, &s, &cs) {
                Some(l) => {
                    sum += l;
                    n += 1;
                }
                None => rec.crash_losses += 1,
            }
        }
        rec.latency_crash = (n > 0).then(|| sum / n as f64);
    }
    rec
}

/// All records for one instance seed: LTF, R-LTF and the fault-free
/// reference.
pub fn measure_instance(
    cfg: &PaperWorkload,
    seed: u64,
    crashes: usize,
    crash_draws: usize,
) -> Vec<RunRecord> {
    let inst = gen_instance(cfg, seed);
    vec![
        measure(
            &inst,
            &Rltf,
            "R-LTF",
            seed,
            cfg.granularity,
            crashes,
            crash_draws,
        ),
        measure(
            &inst,
            &Ltf,
            "LTF",
            seed,
            cfg.granularity,
            crashes,
            crash_draws,
        ),
        measure_fault_free(&inst, seed, cfg.granularity),
    ]
}

/// Run `f` over every seed on a scoped worker pool (atomic work stealing
/// over the seed indices); the output order matches `seeds`. Thin
/// seed-flavoured wrapper over [`ltf_core::par::parallel_map`], which also
/// propagates worker panics with their original payload (a panicking
/// worker used to surface as the collector's unrelated
/// `expect("all slots filled")`).
pub fn parallel_map<T, F>(seeds: &[u64], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    ltf_core::par::parallel_map(seeds, threads, |s| f(*s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let seeds: Vec<u64> = (0..97).collect();
        let out = parallel_map(&seeds, 8, |s| s * 2);
        assert_eq!(out, seeds.iter().map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "measurement failed on seed 13")]
    fn parallel_map_propagates_worker_panic() {
        // Regression: the worker's panic dropped its sender, the collector
        // then panicked with `expect("all slots filled")` and the root
        // cause was lost. The original message must reach the caller.
        let seeds: Vec<u64> = (0..32).collect();
        parallel_map(&seeds, 4, |s| {
            if s == 13 {
                panic!("measurement failed on seed {s}");
            }
            s
        });
    }

    #[test]
    fn run_record_value_roundtrip() {
        let cfg = PaperWorkload {
            tasks: (20, 20),
            epsilon: 1,
            granularity: 1.0,
            ..Default::default()
        };
        for rec in measure_instance(&cfg, 3, 1, 2) {
            let text = serde_json::to_string(&rec).unwrap();
            let back =
                RunRecord::from_value(&serde_json::from_str(&text).unwrap()).expect("decodes");
            assert_eq!(serde_json::to_string(&back).unwrap(), text);
        }
    }

    #[test]
    fn measure_small_instance() {
        let cfg = PaperWorkload {
            tasks: (30, 30),
            epsilon: 1,
            granularity: 1.0,
            ..Default::default()
        };
        let recs = measure_instance(&cfg, 5, 1, 4);
        assert_eq!(recs.len(), 3);
        let rltf = &recs[0];
        assert_eq!(rltf.algo, "R-LTF");
        if rltf.feasible {
            assert!(rltf.stages >= 1);
            assert!(rltf.latency_0 <= rltf.latency_ub + 1e-9);
            assert_eq!(rltf.crash_losses, 0, "ε=1 must survive single crashes");
            let lc = rltf.latency_crash.expect("crash draws requested");
            assert!(lc + 1e-9 >= rltf.latency_0);
            assert!(lc <= rltf.latency_ub + 1e-9);
        }
        let ff = &recs[2];
        assert_eq!(ff.algo, "FF");
        if ff.feasible && rltf.feasible {
            assert!(ff.latency_ub <= rltf.latency_ub + 1e-9);
        }
    }
}
