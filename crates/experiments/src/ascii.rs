//! Terminal line-chart rendering for figures.

use crate::stats::Figure;

const MARKS: &[char] = &['*', '+', 'o', 'x', '#', '@'];

/// Render the figure as a fixed-size ASCII chart with a legend.
///
/// Degenerate inputs are handled instead of corrupting the chart: the
/// requested dimensions are clamped to at least 2×2 (`height == 0` used
/// to underflow `height - 1`, `height == 1` divided 0/0 into NaN axis
/// labels), and points with a non-finite coordinate are skipped with a
/// warning on stderr rather than cast into bogus grid cells.
pub fn render(fig: &Figure, width: usize, height: usize) -> String {
    use std::fmt::Write;
    let (width, height) = (width.max(2), height.max(2));
    let mut out = String::new();
    writeln!(out, "{} — {}", fig.id, fig.title).unwrap();

    let dropped = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter())
        .filter(|p| !p.x.is_finite() || !p.mean.is_finite())
        .count();
    if dropped > 0 {
        eprintln!(
            "warning: figure {}: skipping {dropped} non-finite point(s) in ASCII chart",
            fig.id
        );
    }
    let pts: Vec<(f64, f64)> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| (p.x, p.mean)))
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if pts.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    // Pad the y range a little.
    let pad = 0.05 * (y1 - y0);
    y0 -= pad;
    y1 += pad;

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in fig.series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for p in &s.points {
            if !p.x.is_finite() || !p.mean.is_finite() {
                continue;
            }
            let cx = ((p.x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((p.mean - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = mark;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let yv = y1 - (y1 - y0) * i as f64 / (height - 1) as f64;
        writeln!(out, "{yv:>10.1} |{}", row.iter().collect::<String>()).unwrap();
    }
    writeln!(out, "{:>10} +{}", "", "-".repeat(width)).unwrap();
    writeln!(
        out,
        "{:>10}  {:<.2}{}{:.2}   ({})",
        "",
        x0,
        " ".repeat(width.saturating_sub(10)),
        x1,
        fig.xlabel
    )
    .unwrap();
    for (si, s) in fig.series.iter().enumerate() {
        writeln!(out, "    {} {}", MARKS[si % MARKS.len()], s.name).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{Series, SeriesPoint};

    #[test]
    fn renders_marks_and_legend() {
        let fig = Figure {
            id: "fig".into(),
            title: "demo".into(),
            xlabel: "Granularity".into(),
            ylabel: "Latency".into(),
            series: vec![Series {
                name: "R-LTF".into(),
                points: vec![
                    SeriesPoint::from_sample(0.2, &[100.0]).unwrap(),
                    SeriesPoint::from_sample(2.0, &[200.0]).unwrap(),
                ],
            }],
        };
        let text = render(&fig, 40, 10);
        assert!(text.contains('*'));
        assert!(text.contains("R-LTF"));
        assert!(text.contains("Granularity"));
    }

    fn one_series(points: Vec<SeriesPoint>) -> Figure {
        Figure {
            id: "r".into(),
            title: "regression".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![Series {
                name: "s".into(),
                points,
            }],
        }
    }

    #[test]
    fn degenerate_dimensions_are_clamped() {
        // Regression: height == 0 underflowed `height - 1` (panic in debug
        // builds), height == 1 divided 0/0 into NaN axis labels.
        let fig = one_series(vec![
            SeriesPoint::from_sample(0.2, &[1.0]).unwrap(),
            SeriesPoint::from_sample(2.0, &[2.0]).unwrap(),
        ]);
        for (w, h) in [(0, 0), (1, 0), (0, 1), (40, 1), (1, 10)] {
            let text = render(&fig, w, h);
            assert!(text.contains('*'), "no mark at {w}x{h}:\n{text}");
            assert!(!text.contains("NaN"), "NaN axis label at {w}x{h}:\n{text}");
        }
    }

    #[test]
    fn non_finite_points_are_skipped() {
        // Regression: a NaN/infinite mean was cast straight into a grid
        // coordinate (usize cast of NaN) and poisoned the y range.
        let fig = one_series(vec![
            SeriesPoint::from_sample(0.2, &[1.0]).unwrap(),
            SeriesPoint::from_sample(0.6, &[f64::NAN]).unwrap(),
            SeriesPoint::from_sample(1.0, &[f64::INFINITY]).unwrap(),
            SeriesPoint::from_sample(f64::NAN, &[2.0]).unwrap(),
            SeriesPoint::from_sample(2.0, &[3.0]).unwrap(),
        ]);
        let text = render(&fig, 40, 10);
        assert!(text.contains('*'));
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        // The y axis must span only the finite values (1.0..=3.0 padded),
        // not the infinity.
        let top_label: f64 = text
            .lines()
            .nth(1)
            .and_then(|l| l.split('|').next())
            .and_then(|l| l.trim().parse().ok())
            .expect("numeric top axis label");
        assert!(top_label < 10.0, "y range poisoned: {top_label}");
    }

    #[test]
    fn all_points_non_finite_is_no_data() {
        let fig = one_series(vec![SeriesPoint::from_sample(0.2, &[f64::NAN]).unwrap()]);
        assert!(render(&fig, 20, 5).contains("no data"));
    }

    #[test]
    fn empty_figure() {
        let fig = Figure {
            id: "e".into(),
            title: "e".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![],
        };
        assert!(render(&fig, 20, 5).contains("no data"));
    }
}
