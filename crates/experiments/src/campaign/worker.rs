//! The campaign worker: the flattened work-item list, per-item front
//! enumeration, and the checkpointed shard runner.
//!
//! A campaign's unit of distribution is the **work item**: one (graph
//! instance, ε band) front enumeration, numbered globally across the
//! whole expanded experiment matrix in expansion order. Sharding is
//! round-robin over that global index ([`ltf_core::shard::Shard`]), so
//! the item→shard assignment is a pure function of the spec and the shard
//! count — any process can recompute any shard, which is what lets the
//! coordinator reassign a dead worker's shard and still merge a
//! byte-identical front.

use super::spec::{CampaignSpec, Experiment};
use crate::checkpoint::{resume_chunks, Checkpoint};
use crate::figures::window_for;
use crate::pareto::{enumerate, validate_front, FrontRow, ParetoInstance};
use crate::workload::gen_instance_on;
use ltf_core::shard::Shard;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::io::Write;
use std::path::Path;

/// Crash-injection hook for the kill-a-worker tests: when this variable
/// names a marker file, the worker hard-aborts after its first emitted
/// item *unless the marker already exists* (it creates the marker first,
/// so exactly one incarnation dies and its retry runs to completion).
pub const ABORT_ENV: &str = "LTF_CAMPAIGN_ABORT_AFTER_ITEM";

/// One unit of campaign work: instance `instance` of experiment
/// `experiment`, at global position `item` in the flattened list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Global index across all experiments (the sharding key).
    pub item: usize,
    /// Index into the expanded experiment list.
    pub experiment: usize,
    /// Instance number within the experiment.
    pub instance: usize,
    /// The instance's deterministic seed.
    pub seed: u64,
}

/// Flatten the expanded experiment matrix into the global ordered
/// work-item list (experiment-major, instance-minor). Deterministic in
/// the experiment list alone.
pub fn work_items(exps: &[Experiment]) -> Vec<WorkItem> {
    let mut out = Vec::new();
    for exp in exps {
        for k in 0..exp.instances {
            out.push(WorkItem {
                item: out.len(),
                experiment: exp.index,
                instance: k,
                seed: exp.base_seed.wrapping_add(k as u64),
            });
        }
    }
    out
}

/// The completed result of one work item: the journal record, the worker
/// stdout line, and the unit the coordinator merges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemResult {
    /// Global work-item index.
    pub item: u64,
    /// Experiment index the item belongs to.
    pub experiment: u64,
    /// The experiment's label (carried so merged output lines are
    /// self-describing without re-expanding the spec).
    pub label: String,
    /// Instance seed the front was enumerated on.
    pub seed: u64,
    /// The instance's compact front rows.
    pub rows: Vec<FrontRow>,
}

/// Enumerate one work item's front. Every witness is re-validated against
/// its platform prefix first; a validation failure is a scheduler bug and
/// panics (propagated with its payload by the worker pool) rather than
/// journalling a bogus result as completed work.
pub fn compute_item(exps: &[Experiment], wi: &WorkItem) -> ItemResult {
    let exp = &exps[wi.experiment];
    let (g, p) = match exp.family {
        ParetoInstance::Workload => {
            let inst = gen_instance_on(&exp.workload, wi.seed, exp.topology.as_ref());
            (inst.graph, inst.platform)
        }
        fam => {
            let (g, p, _) = fam.build(wi.seed, exp.workload.utilization);
            (g, p)
        }
    };
    let front = enumerate(&g, &p, &exp.algo, &exp.opts).expect("algo validated at expansion");
    if let Err(e) = validate_front(&g, &p, &front) {
        panic!("campaign item {} ({}): {e}", wi.item, exp.label);
    }
    ItemResult {
        item: wi.item as u64,
        experiment: wi.experiment as u64,
        label: exp.label.clone(),
        seed: wi.seed,
        rows: front.iter().map(|pt| FrontRow::new(wi.seed, pt)).collect(),
    }
}

/// The journal key of work item `item` under a spec with fingerprint
/// `sig`: name + signature pin the exact campaign configuration, so a
/// shared or stale journal never cross-replays between campaigns.
pub fn journal_key(name: &str, sig: u64, item: usize) -> String {
    format!("campaign:{name}:{sig:016x}:item={item:06}")
}

/// Run one shard of the campaign: expand the spec, keep the items the
/// shard owns, and enumerate each pending one in checkpointed windows,
/// streaming every completed [`ItemResult`] (replayed from the journal
/// first, then freshly computed, each exactly once) through `emit`.
/// Returns the number of results emitted — always the shard's full item
/// count on success, whatever mix of replay and recompute produced them.
pub fn run_shard(
    spec: &CampaignSpec,
    shard: Shard,
    threads: usize,
    journal: Option<&Path>,
    mut emit: impl FnMut(&ItemResult),
) -> Result<usize, String> {
    let exps = spec.expand().map_err(|e| e.to_string())?;
    let owned: Vec<WorkItem> = work_items(&exps)
        .into_iter()
        .filter(|wi| shard.owns(wi.item))
        .collect();
    let sig = spec.signature();
    let key = |wi: &WorkItem| journal_key(&spec.name, sig, wi.item);
    let expected: HashSet<String> = owned.iter().map(key).collect();
    let mut emitted = 0usize;
    let mut ckpt = match journal {
        Some(path) => Some(
            Checkpoint::open(path, |k, value| {
                if !expected.contains(k) {
                    return false; // different campaign or shard sharing the file
                }
                match ItemResult::from_value(value) {
                    Ok(r) => {
                        emitted += 1;
                        emit(&r);
                        true
                    }
                    Err(e) => {
                        eprintln!(
                            "warning: checkpoint: record {k} does not decode ({e}); recomputing"
                        );
                        false
                    }
                }
            })
            .map_err(|e| format!("checkpoint: {e}"))?,
        ),
        None => None,
    };
    resume_chunks(
        &owned,
        threads,
        window_for(threads),
        &mut ckpt,
        key,
        |wi| compute_item(&exps, wi),
        |_, r: ItemResult| {
            emitted += 1;
            emit(&r);
        },
    )
    .map_err(|e| format!("checkpoint: {e}"))?;
    Ok(emitted)
}

/// The shared worker-process entry point behind both `ltf-experiments
/// campaign-worker` and `ltf-campaign campaign-worker`: load the spec,
/// run the shard, and stream the wire form the coordinator consumes —
/// one JSON line per [`ItemResult`], each flushed as soon as it
/// completes, then the final
/// `{"done":true,"shard":"K/N","items":N}` line that distinguishes a
/// clean finish from a crash mid-shard.
pub fn worker_main(
    spec_path: &Path,
    shard: Shard,
    threads: usize,
    journal: Option<&Path>,
    out: &mut impl Write,
) -> Result<usize, String> {
    let spec = CampaignSpec::load(spec_path).map_err(|e| e.to_string())?;
    if spec.failure.is_some() {
        // An SLO campaign: same wire, same supervision, different items.
        return super::slo::slo_worker_main(&spec, shard, threads, journal, out);
    }
    let abort_marker = std::env::var_os(ABORT_ENV).map(std::path::PathBuf::from);
    let mut io_err: Option<String> = None;
    let emitted = run_shard(&spec, shard, threads, journal, |r| {
        if io_err.is_some() {
            return;
        }
        let line = serde_json::to_string(r).expect("value writer is infallible");
        if let Err(e) = writeln!(out, "{line}").and_then(|()| out.flush()) {
            io_err = Some(format!("worker stdout: {e}"));
            return;
        }
        if let Some(marker) = &abort_marker {
            if !marker.exists() {
                // First incarnation: leave the marker so the retry
                // survives, then die the hard way (no unwinding, no
                // cleanup) — the same failure the SIGKILL CI smoke
                // injects.
                let _ = std::fs::write(marker, b"aborted\n");
                std::process::abort();
            }
        }
    })?;
    if let Some(e) = io_err {
        return Err(e);
    }
    let done = serde::Value::Map(vec![
        ("done".to_string(), serde::Value::Bool(true)),
        ("shard".to_string(), serde::Value::Str(shard.to_string())),
        ("items".to_string(), serde::Value::UInt(emitted as u64)),
    ]);
    let line = serde_json::to_string(&done).expect("value writer is infallible");
    writeln!(out, "{line}")
        .and_then(|()| out.flush())
        .map_err(|e| format!("worker stdout: {e}"))?;
    Ok(emitted)
}
