//! Declarative experiment campaigns: spec → matrix → sharded, checkpointed
//! execution → deterministic merge.
//!
//! A campaign is described by a JSON [`spec`] file (graph
//! families × heuristics × ε ranges × platform sizes × instance counts),
//! expanded into an ordered experiment matrix and flattened into a global
//! work-item list. The [`worker`] side runs one round-robin
//! shard of that list — journaling each completed item to a PR 5
//! checkpoint so a killed worker resumes instead of recomputing — and the
//! [`merge`] side recombines per-shard results into output
//! **byte-identical** to a single-process run, failing loudly on missing
//! items or nondeterministic duplicates.
//!
//! Specs with a `failure` block run the [`slo`] pipeline instead: cells
//! solve one witness schedule each and replay sampled crash traces
//! through it, aggregating SLO distribution statistics (`ltf-faultlab`)
//! under the same sharding, checkpointing, and byte-identity discipline.
//!
//! The `ltf-campaign` binary builds the multi-process coordinator
//! (spawned workers or remote LDJSON shards) on top of exactly these
//! pieces; `ltf-experiments campaign-worker` exposes the shard runner as
//! a subcommand. See `docs/campaign-spec.md` for the spec format,
//! `docs/slo-campaign.md` for SLO campaigns, and `ARCHITECTURE.md` for
//! where campaigns sit in the stack.

pub mod merge;
pub mod slo;
pub mod spec;
pub mod worker;

pub use merge::{render_item, render_lines, run_serial, CampaignResult, Merger};
pub use slo::{
    build_slo_report, compute_slo_item, run_slo_serial, run_slo_shard, slo_cells, slo_journal_key,
    slo_work_items, SloCell, SloItemResult, SloWorkItem,
};
pub use spec::{
    CampaignSpec, EpsRange, Experiment, FailureSpec, SloSpec, SpecError, TopologyShape,
    TopologySpec, DEFAULT_SEED,
};
pub use worker::{
    compute_item, journal_key, run_shard, work_items, worker_main, ItemResult, WorkItem, ABORT_ENV,
};
