//! Declarative experiment campaigns: spec → matrix → sharded, checkpointed
//! execution → deterministic merge.
//!
//! A campaign is described by a JSON [`spec`] file (graph
//! families × heuristics × ε ranges × platform sizes × instance counts),
//! expanded into an ordered experiment matrix and flattened into a global
//! work-item list. The [`worker`] side runs one round-robin
//! shard of that list — journaling each completed item to a PR 5
//! checkpoint so a killed worker resumes instead of recomputing — and the
//! [`merge`] side recombines per-shard results into output
//! **byte-identical** to a single-process run, failing loudly on missing
//! items or nondeterministic duplicates.
//!
//! The `ltf-campaign` binary builds the multi-process coordinator
//! (spawned workers or remote LDJSON shards) on top of exactly these
//! pieces; `ltf-experiments campaign-worker` exposes the shard runner as
//! a subcommand. See `docs/campaign-spec.md` for the spec format and
//! `ARCHITECTURE.md` for where campaigns sit in the stack.

pub mod merge;
pub mod spec;
pub mod worker;

pub use merge::{render_item, render_lines, run_serial, Merger};
pub use spec::{CampaignSpec, EpsRange, Experiment, SpecError, DEFAULT_SEED};
pub use worker::{
    compute_item, journal_key, run_shard, work_items, worker_main, ItemResult, WorkItem, ABORT_ENV,
};
