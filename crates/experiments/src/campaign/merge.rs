//! Merging per-shard results back into one campaign front.
//!
//! The [`Merger`] collects [`ItemResult`]s from any number of shards (in
//! any arrival order) into the global work-item order, refusing to finish
//! while items are missing and refusing *conflicting duplicates*
//! outright: a work item computed twice — a retried shard, a journal
//! replay racing a recompute — must produce bit-identical results, so a
//! mismatch is a determinism violation worth failing loudly over, never
//! something to paper over by picking one. [`render_lines`] then turns
//! the merged results into the canonical JSON-lines output, which is what
//! the byte-identity guarantee is stated over: a distributed run's
//! rendered merge equals [`run_serial`]'s output exactly.

use super::spec::CampaignSpec;
use super::worker::{run_shard, work_items, ItemResult};
use ltf_core::shard::Shard;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// What the merger needs from a campaign work-item result. Pareto
/// campaigns merge [`ItemResult`]s, SLO campaigns merge
/// [`super::slo::SloItemResult`]s; the merge discipline — global item
/// order, conflicting duplicates are determinism violations — is
/// identical, so the [`Merger`] is generic over it.
pub trait CampaignResult: Clone + PartialEq + std::fmt::Debug {
    /// Global work-item index (the merge key).
    fn item_index(&self) -> u64;
    /// Short description used in determinism-violation diagnostics.
    fn summary(&self) -> String;
}

impl CampaignResult for ItemResult {
    fn item_index(&self) -> u64 {
        self.item
    }

    fn summary(&self) -> String {
        format!("{} rows, label {:?}", self.rows.len(), self.label)
    }
}

/// Accumulates per-item results from all shards of a campaign.
#[derive(Debug)]
pub struct Merger<R: CampaignResult = ItemResult> {
    expected: usize,
    results: BTreeMap<u64, R>,
}

impl<R: CampaignResult> Merger<R> {
    /// A merger expecting the campaign's full work-item count.
    pub fn new(expected: usize) -> Self {
        Self {
            expected,
            results: BTreeMap::new(),
        }
    }

    /// Add one completed item. Re-inserting a bit-identical result is
    /// fine (idempotent — retries and replays do this); a *different*
    /// result under the same item index is a determinism violation and
    /// errors.
    pub fn insert(&mut self, r: R) -> Result<(), String> {
        let item = r.item_index();
        if item >= self.expected as u64 {
            return Err(format!(
                "merge: item {item} out of range (campaign has {} items)",
                self.expected
            ));
        }
        match self.results.get(&item) {
            Some(prev) if *prev != r => Err(format!(
                "merge: determinism violation: item {item} computed twice with different \
                 results ({} vs {})",
                prev.summary(),
                r.summary()
            )),
            Some(_) => Ok(()),
            None => {
                self.results.insert(item, r);
                Ok(())
            }
        }
    }

    /// Number of distinct items collected so far.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when nothing has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Whether every expected item has arrived.
    pub fn is_complete(&self) -> bool {
        self.results.len() == self.expected
    }

    /// The item indices still missing, ascending.
    pub fn missing(&self) -> Vec<u64> {
        (0..self.expected as u64)
            .filter(|i| !self.results.contains_key(i))
            .collect()
    }

    /// Finish the merge: the results in global item order, or an error
    /// naming the missing items.
    pub fn finish(self) -> Result<Vec<R>, String> {
        if !self.is_complete() {
            let missing = self.missing();
            return Err(format!(
                "merge: {} of {} items missing (first missing: {:?})",
                missing.len(),
                self.expected,
                &missing[..missing.len().min(8)]
            ));
        }
        Ok(self.results.into_values().collect())
    }
}

/// Render one item's front rows as output lines: each row becomes a flat
/// JSON object prefixed with the experiment label and item index.
pub fn render_item(r: &ItemResult) -> Vec<String> {
    r.rows
        .iter()
        .map(|row| {
            let mut fields = vec![
                ("experiment".to_string(), Value::Str(r.label.clone())),
                ("item".to_string(), Value::UInt(r.item)),
            ];
            match row.to_value() {
                Value::Map(m) => fields.extend(m),
                other => fields.push(("row".to_string(), other)),
            }
            serde_json::to_string(&Value::Map(fields)).expect("value writer is infallible")
        })
        .collect()
}

/// Render merged results (global item order) into the canonical campaign
/// output: one JSON line per front row.
pub fn render_lines(results: &[ItemResult]) -> Vec<String> {
    results.iter().flat_map(render_item).collect()
}

/// Run the whole campaign in this process and render its output — the
/// golden reference every distributed run is compared against. Implemented
/// as the trivial one-shard run through the exact same worker and merge
/// path, so "serial equals distributed" is structural, not coincidental.
pub fn run_serial(
    spec: &CampaignSpec,
    threads: usize,
    journal: Option<&Path>,
) -> Result<Vec<String>, String> {
    let expected = work_items(&spec.expand().map_err(|e| e.to_string())?).len();
    let mut collected = Vec::new();
    run_shard(spec, Shard::solo(), threads, journal, |r| {
        collected.push(r.clone());
    })?;
    let mut merger = Merger::new(expected);
    for r in collected {
        merger.insert(r)?;
    }
    Ok(render_lines(&merger.finish()?))
}
