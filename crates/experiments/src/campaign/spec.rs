//! The declarative campaign spec: JSON format, validation, and expansion
//! into the experiment matrix.
//!
//! A spec file declares axes — graph families × heuristics × ε ranges ×
//! platform sizes × utilizations × granularities — plus an instance count
//! and shared enumeration budgets. [`CampaignSpec::expand`] validates
//! every axis and takes the cartesian product into an ordered list of
//! [`Experiment`]s; the order (and the per-instance seeds derived from
//! it) depends only on the spec, never on how the work is later sharded,
//! which is what makes a distributed run byte-identical to a serial one.
//! See `docs/campaign-spec.md` for the full field reference.

use crate::pareto::ParetoInstance;
use crate::workload::PaperWorkload;
use ltf_baselines::full_solver;
use ltf_core::search::pareto::ParetoOptions;
use ltf_graph::generate::fig1_diamond;
use ltf_platform::{CommMode, Platform, Topology};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Default base seed of a campaign (`"seed"` absent).
pub const DEFAULT_SEED: u64 = 0xB10B5EED;

/// One inclusive ε band of the sweep. Both bounds optional: `{}` means
/// the full `0..=m−1` range, `{"min": 1}` drops the fault-free row,
/// `{"max": 2}` caps the degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpsRange {
    /// Smallest swept ε (default 0).
    pub min: Option<u8>,
    /// Largest swept ε (default `m − 1` per platform prefix).
    pub max: Option<u8>,
}

impl EpsRange {
    /// Compact label used in experiment names.
    fn label(&self) -> String {
        match (self.min, self.max) {
            (None, None) => "eps=all".to_string(),
            (Some(a), None) => format!("eps={a}.."),
            (None, Some(b)) => format!("eps=..{b}"),
            (Some(a), Some(b)) => format!("eps={a}..{b}"),
        }
    }
}

/// The `failure` block: what turns a Pareto campaign into a stochastic
/// SLO campaign. Declares the per-processor failure model and how many
/// sampled crash traces each cell replays. See `docs/slo-campaign.md`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Uniform per-processor failure rate λ (crashes per unit time).
    /// Exactly one of `rate` / `rates` must be set.
    pub rate: Option<f64>,
    /// Explicit per-processor rates (heterogeneous hosts); the length
    /// must match every cell's platform size.
    pub rates: Option<Vec<f64>>,
    /// Sampled crash traces per cell (default 16).
    pub traces: Option<usize>,
    /// Stream items replayed per trace (default 32).
    pub items: Option<usize>,
    /// Traces per work item — the unit of sharding and checkpointing
    /// (default 4).
    pub block: Option<usize>,
    /// Period Δ each cell's witness schedule is solved at. Defaults to
    /// the workload's calibrated `Δ = 10(ε+1)`; required for fig graph
    /// families, which carry no natural period.
    pub period: Option<f64>,
    /// Recovery policy: `"fail-stop"` (default) or `"reroute"`.
    pub policy: Option<String>,
    /// Simulator: `"synchronous"` (default) or `"asap"`.
    pub engine: Option<String>,
}

impl FailureSpec {
    /// Traces per cell.
    pub fn traces(&self) -> usize {
        self.traces.unwrap_or(16)
    }

    /// Stream items per trace.
    pub fn items(&self) -> usize {
        self.items.unwrap_or(32)
    }

    /// Traces per work item.
    pub fn block(&self) -> usize {
        self.block.unwrap_or(4)
    }
}

/// The `topology` block: routes generated workload platforms through a
/// declared physical interconnect instead of the paper's random complete
/// delay matrix. Processor speeds are still drawn per instance; only the
/// communication layer changes. Applies to the `"workload"` graph family
/// only — the fig worked examples pin their own platforms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Interconnect shape, instantiated at every swept `platform_procs`
    /// size.
    pub shape: TopologyShape,
    /// Communication model over the links (default
    /// [`CommMode::Contended`]).
    pub mode: Option<CommMode>,
}

/// Declarative interconnect shapes. Wire form is externally tagged:
/// `{"Chain": 0.5}`, `{"Star": 0.4}`, or
/// `{"Links": [[0, 1, 0.5], [1, 2, 0.25]]}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologyShape {
    /// Linear chain `P1 - P2 - … - Pm` with this uniform link delay.
    Chain(f64),
    /// Star around hub processor 0 with this per-spoke delay.
    Star(f64),
    /// Explicit undirected `(a, b, unit_delay)` links. Endpoints must be
    /// valid (and the graph connected) at every swept platform size.
    Links(Vec<(usize, usize, f64)>),
}

impl TopologySpec {
    /// The effective communication model.
    pub fn comm_mode(&self) -> CommMode {
        self.mode.unwrap_or(CommMode::Contended)
    }

    /// Build the routed platform over the given processor speeds.
    ///
    /// # Panics
    /// When the shape is invalid at `speeds.len()` processors. Campaign
    /// specs are validated before expansion, so worker-side construction
    /// never fails on a spec that passed [`CampaignSpec::expand`].
    pub fn build_platform(&self, speeds: Vec<f64>) -> Platform {
        self.topology(speeds)
            .into_platform_with(self.comm_mode())
            .expect("validated: topology is connected")
    }

    fn topology(&self, speeds: Vec<f64>) -> Topology {
        match &self.shape {
            TopologyShape::Chain(d) => Topology::chain(speeds, *d),
            TopologyShape::Star(d) => Topology::star(speeds, *d),
            TopologyShape::Links(links) => {
                let mut t = Topology::new(speeds);
                for &(a, b, d) in links {
                    t = t.link(a, b, d);
                }
                t
            }
        }
    }

    /// Check the shape against one platform size (the campaign validator
    /// calls this per swept `platform_procs` entry; the CLI calls it once
    /// for its fixed instance size).
    pub fn validate_for(&self, m: usize) -> Result<(), SpecError> {
        match &self.shape {
            TopologyShape::Chain(d) | TopologyShape::Star(d) => {
                if !(*d > 0.0 && d.is_finite()) {
                    return Err(SpecError::BadTopology(format!(
                        "link delay {d} must be a positive finite number"
                    )));
                }
            }
            TopologyShape::Links(links) => {
                if links.is_empty() {
                    return Err(SpecError::BadTopology(
                        "\"Links\" must declare at least one link".into(),
                    ));
                }
                for &(a, b, d) in links {
                    if a >= m || b >= m {
                        return Err(SpecError::BadTopology(format!(
                            "link ({a}, {b}) endpoint out of range at m={m}"
                        )));
                    }
                    if a == b {
                        return Err(SpecError::BadTopology(format!("self-link ({a}, {b})")));
                    }
                    if !(d > 0.0 && d.is_finite()) {
                        return Err(SpecError::BadTopology(format!(
                            "link ({a}, {b}) delay {d} must be a positive finite number"
                        )));
                    }
                }
            }
        }
        // Connectivity at this size: every pair needs a route.
        if self.topology(vec![1.0; m]).route_table().is_none() {
            return Err(SpecError::BadTopology(format!("disconnected at m={m}")));
        }
        Ok(())
    }
}

/// The `slo` block: the declared objective every cell is judged against
/// (violations themselves are defined in `ltf-faultlab`: an item is a
/// violation when lost or produced above `max_latency`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Per-item latency bound (`None` = only losses violate).
    pub max_latency: Option<f64>,
    /// Tolerated violation rate in `[0, 1]` (`None` = zero tolerance).
    pub max_violation_rate: Option<f64>,
}

/// A declarative experiment campaign, as parsed from a JSON spec file.
///
/// Every axis field is a list; the expansion is the cartesian product of
/// all axes. Workload-model axes (`platform_procs`, `utilizations`,
/// `granularities`, `instances`) only apply to the `"workload"` graph
/// family — the fig worked examples pin their own platform, so those axes
/// collapse to a single experiment per (figure, heuristic, ε range).
///
/// A spec with a `failure` block is an **SLO campaign** instead of a
/// Pareto campaign: each cell solves one witness schedule and replays
/// sampled crash traces through it (`ltf-experiments slo`, or any
/// campaign worker — the worker entry points dispatch on the block).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name: prefixes journal keys and output labels.
    pub name: String,
    /// Base seed; per-instance seeds derive deterministically from it
    /// (default [`DEFAULT_SEED`]).
    pub seed: Option<u64>,
    /// Random instances per workload experiment (default 1; must be ≥ 1).
    pub instances: Option<usize>,
    /// Graph families: any of `fig1`, `fig2`, `fig2-variant`, `workload`.
    pub graphs: Vec<String>,
    /// Heuristic registry names, or `"all"` for the cross-heuristic merge.
    pub heuristics: Vec<String>,
    /// ε bands to sweep (default one full-range band).
    pub epsilons: Option<Vec<EpsRange>>,
    /// Platform sizes for generated workload instances (default `[20]`).
    pub platform_procs: Option<Vec<usize>>,
    /// Target utilizations `U*` for workload calibration (default `[0.25]`).
    pub utilizations: Option<Vec<f64>>,
    /// Target granularities `g(G, P)` (default `[1.0]`).
    pub granularities: Option<Vec<f64>>,
    /// Physical interconnect for generated workload platforms (default:
    /// the paper's random complete delay matrix).
    pub topology: Option<TopologySpec>,
    /// Latency budget forwarded to the enumeration (`ParetoOptions`).
    pub max_latency: Option<f64>,
    /// Processor budget forwarded to the enumeration.
    pub max_procs: Option<usize>,
    /// Relaxed-period probe budget per cell (default 3).
    pub relax_steps: Option<u32>,
    /// Period-bisection iterations per cell (default 40).
    pub iterations: Option<u32>,
    /// Stochastic failure model: present ⇒ this is an SLO campaign.
    pub failure: Option<FailureSpec>,
    /// Declared service-level objective (SLO campaigns only).
    pub slo: Option<SloSpec>,
}

/// Typed spec rejection: each validation class is its own variant, so
/// callers (and the error-corpus tests) can tell a malformed document
/// from an empty axis from a bad ε band without string matching.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The file could not be read.
    Io(String),
    /// Malformed JSON, an unknown field, or a wrong-typed field — the
    /// strict derived decoder's message, verbatim.
    Parse(String),
    /// A declared axis list is empty, so the matrix has no cells.
    EmptyAxis(&'static str),
    /// An ε band with `min > max` matches no degree at all.
    BadEpsilonRange {
        /// The band's floor.
        min: u8,
        /// The band's ceiling.
        max: u8,
    },
    /// A field value outside its domain (zero instances, nonpositive
    /// utilization…), with the offending field and value named.
    BadValue(String),
    /// A malformed `topology` block: bad delay, bad link endpoints, or a
    /// shape that leaves some swept platform size disconnected.
    BadTopology(String),
    /// A graph family name `ParetoInstance::parse` does not know.
    UnknownGraph(String),
    /// A heuristic name the solver registry does not know.
    UnknownHeuristic(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "spec: {e}"),
            Self::Parse(e) => write!(f, "spec: {e}"),
            Self::EmptyAxis(axis) => write!(f, "spec: axis {axis:?} is empty"),
            Self::BadEpsilonRange { min, max } => {
                write!(f, "spec: epsilon range min={min} > max={max} is empty")
            }
            Self::BadValue(msg) => write!(f, "spec: {msg}"),
            Self::BadTopology(msg) => write!(f, "spec: topology: {msg}"),
            Self::UnknownGraph(g) => write!(
                f,
                "spec: unknown graph family {g:?} (known: fig1, fig2, fig2-variant, workload)"
            ),
            Self::UnknownHeuristic(h) => write!(f, "spec: unknown heuristic {h:?} (or \"all\")"),
        }
    }
}

impl std::error::Error for SpecError {}

/// One cell of the expanded matrix: everything a worker needs to generate
/// its instances and enumerate their fronts. Experiments are *not* sent
/// over the wire — both sides re-expand the spec, and the expansion is
/// deterministic, so indices and seeds always agree.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Position in the expansion order (stable across runs and shards).
    pub index: usize,
    /// Human-readable cell label, e.g. `workload/rltf/eps=all/m=20/u=0.25/g=1`.
    pub label: String,
    /// Which instance family the cell enumerates on.
    pub family: ParetoInstance,
    /// Heuristic registry name, or `"all"`.
    pub algo: String,
    /// Calibrated workload parameters (fig families ignore all but
    /// `utilization`, which their `build` signature carries through).
    pub workload: PaperWorkload,
    /// Declared interconnect for generated platforms (`None` = the
    /// paper's random complete delay matrix; always `None` for fig
    /// families, which pin their own platforms).
    pub topology: Option<TopologySpec>,
    /// Random instances in this cell (1 for fig families).
    pub instances: usize,
    /// First instance seed of the cell; instance `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Per-instance enumeration options (ε band, budgets; threads = 1 —
    /// parallelism lives across work items, not inside one).
    pub opts: ParetoOptions,
}

impl CampaignSpec {
    /// Parse a spec document. Unknown fields, wrong types and malformed
    /// JSON all surface as [`SpecError::Parse`] with the decoder's
    /// message.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        serde_json::from_str(text).map_err(|e| SpecError::Parse(e.to_string()))
    }

    /// Read and parse a spec file.
    pub fn load(path: &Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// FNV-1a fingerprint of the canonical serialized spec. Journal keys
    /// embed it so a checkpoint file is never cross-replayed between
    /// different campaign configurations.
    pub fn signature(&self) -> u64 {
        let text = serde_json::to_string(self).expect("value writer is infallible");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Validate every axis and expand the cartesian product into the
    /// ordered experiment list. The order — and therefore every derived
    /// index and seed — depends only on the spec.
    pub fn expand(&self) -> Result<Vec<Experiment>, SpecError> {
        self.validate()?;
        let instances = self.instances.unwrap_or(1);
        let epsilons = self.epsilons.clone().unwrap_or_else(|| {
            vec![EpsRange {
                min: None,
                max: None,
            }]
        });
        let procs_axis = self.platform_procs.clone().unwrap_or_else(|| vec![20]);
        let util_axis = self.utilizations.clone().unwrap_or_else(|| vec![0.25]);
        let gran_axis = self.granularities.clone().unwrap_or_else(|| vec![1.0]);
        let seed = self.seed.unwrap_or(DEFAULT_SEED);

        let mut out = Vec::new();
        for graph in &self.graphs {
            let family = ParetoInstance::parse(graph).expect("validated");
            // Fig worked examples pin their own graph and platform: the
            // workload axes collapse to one point and instances to 1.
            let workloadish = family == ParetoInstance::Workload;
            let one_usize = vec![procs_axis[0]];
            let one_util = vec![util_axis[0]];
            let one_gran = vec![gran_axis[0]];
            let (procs, utils, grans, inst_count) = if workloadish {
                (&procs_axis, &util_axis, &gran_axis, instances)
            } else {
                (&one_usize, &one_util, &one_gran, 1)
            };
            for algo in &self.heuristics {
                for eps in &epsilons {
                    for &m in procs {
                        for &u in utils {
                            for &g in grans {
                                let index = out.len();
                                let mut label = format!("{graph}/{algo}/{}", eps.label());
                                if workloadish {
                                    label = format!("{label}/m={m}/u={u}/g={g}");
                                }
                                out.push(Experiment {
                                    index,
                                    label,
                                    family,
                                    algo: algo.clone(),
                                    workload: PaperWorkload {
                                        procs: m,
                                        utilization: u,
                                        granularity: g,
                                        ..Default::default()
                                    },
                                    topology: if workloadish {
                                        self.topology.clone()
                                    } else {
                                        None
                                    },
                                    instances: inst_count,
                                    base_seed: seed.wrapping_add(
                                        (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                                    ),
                                    opts: ParetoOptions {
                                        min_epsilon: eps.min,
                                        max_epsilon: eps.max,
                                        max_latency: self.max_latency,
                                        max_procs: self.max_procs,
                                        relax_steps: self.relax_steps.unwrap_or(3),
                                        iterations: self.iterations.unwrap_or(40),
                                        ..Default::default()
                                    },
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn validate(&self) -> Result<(), SpecError> {
        if self.name.trim().is_empty() {
            return Err(SpecError::BadValue("\"name\" must be non-empty".into()));
        }
        if self.graphs.is_empty() {
            return Err(SpecError::EmptyAxis("graphs"));
        }
        if self.heuristics.is_empty() {
            return Err(SpecError::EmptyAxis("heuristics"));
        }
        for (axis, empty) in [
            (
                "epsilons",
                self.epsilons.as_ref().is_some_and(Vec::is_empty),
            ),
            (
                "platform_procs",
                self.platform_procs.as_ref().is_some_and(Vec::is_empty),
            ),
            (
                "utilizations",
                self.utilizations.as_ref().is_some_and(Vec::is_empty),
            ),
            (
                "granularities",
                self.granularities.as_ref().is_some_and(Vec::is_empty),
            ),
        ] {
            if empty {
                return Err(SpecError::EmptyAxis(axis));
            }
        }
        for eps in self.epsilons.iter().flatten() {
            if let (Some(min), Some(max)) = (eps.min, eps.max) {
                if min > max {
                    return Err(SpecError::BadEpsilonRange { min, max });
                }
            }
        }
        if self.instances == Some(0) {
            return Err(SpecError::BadValue("\"instances\" must be ≥ 1".into()));
        }
        for &m in self.platform_procs.iter().flatten() {
            if m == 0 {
                return Err(SpecError::BadValue(
                    "\"platform_procs\" entries must be ≥ 1".into(),
                ));
            }
        }
        for &u in self.utilizations.iter().flatten() {
            if !(u > 0.0 && u.is_finite()) {
                return Err(SpecError::BadValue(format!(
                    "\"utilizations\" entry {u} must be a positive finite number"
                )));
            }
        }
        for &g in self.granularities.iter().flatten() {
            if !(g > 0.0 && g.is_finite()) {
                return Err(SpecError::BadValue(format!(
                    "\"granularities\" entry {g} must be a positive finite number"
                )));
            }
        }
        if let Some(l) = self.max_latency {
            if !(l > 0.0 && l.is_finite()) {
                return Err(SpecError::BadValue(format!(
                    "\"max_latency\" {l} must be a positive finite number"
                )));
            }
        }
        for graph in &self.graphs {
            if ParetoInstance::parse(graph).is_none() {
                return Err(SpecError::UnknownGraph(graph.clone()));
            }
        }
        if let Some(t) = &self.topology {
            if self.graphs.iter().any(|g| g != "workload") {
                return Err(SpecError::BadTopology(
                    "\"topology\" applies only to the \"workload\" graph family".into(),
                ));
            }
            for &m in self.platform_procs.as_deref().unwrap_or(&[20]) {
                t.validate_for(m)?;
            }
        }
        // The registry is instance-independent; probe it on the smallest
        // worked example (same trick as `workload_sweep`'s pre-check).
        let g = fig1_diamond();
        let p = Platform::fig1_platform();
        let solver = full_solver(&g, &p);
        for algo in &self.heuristics {
            if algo != "all" && solver.heuristic(algo).is_none() {
                return Err(SpecError::UnknownHeuristic(algo.clone()));
            }
        }
        self.validate_slo()
    }

    /// Validation of the SLO blocks (`failure` / `slo`). SLO cells need
    /// one concrete (ε, schedule) witness each, so the looser Pareto
    /// conventions — unbounded ε bands, the `"all"` cross-heuristic
    /// merge — are rejected here rather than silently reinterpreted.
    fn validate_slo(&self) -> Result<(), SpecError> {
        let Some(f) = &self.failure else {
            if self.slo.is_some() {
                return Err(SpecError::BadValue(
                    "\"slo\" requires a \"failure\" block".into(),
                ));
            }
            return Ok(());
        };
        match (&f.rate, &f.rates) {
            (Some(_), Some(_)) | (None, None) => {
                return Err(SpecError::BadValue(
                    "\"failure\" needs exactly one of \"rate\" / \"rates\"".into(),
                ));
            }
            (Some(r), None) => {
                if !(r.is_finite() && *r >= 0.0) {
                    return Err(SpecError::BadValue(format!(
                        "\"failure.rate\" {r} must be a non-negative finite number"
                    )));
                }
            }
            (None, Some(rs)) => {
                if rs.is_empty() {
                    return Err(SpecError::EmptyAxis("failure.rates"));
                }
                if let Some(bad) = rs.iter().find(|r| !(r.is_finite() && **r >= 0.0)) {
                    return Err(SpecError::BadValue(format!(
                        "\"failure.rates\" entry {bad} must be a non-negative finite number"
                    )));
                }
                for &m in self.platform_procs.as_deref().unwrap_or(&[20]) {
                    if self.graphs.iter().any(|g| g == "workload") && m != rs.len() {
                        return Err(SpecError::BadValue(format!(
                            "\"failure.rates\" has {} entries but \"platform_procs\" sweeps m={m}",
                            rs.len()
                        )));
                    }
                }
            }
        }
        for (field, zero) in [
            ("failure.traces", f.traces == Some(0)),
            ("failure.items", f.items == Some(0)),
            ("failure.block", f.block == Some(0)),
        ] {
            if zero {
                return Err(SpecError::BadValue(format!("\"{field}\" must be ≥ 1")));
            }
        }
        match f.period {
            Some(p) if !(p > 0.0 && p.is_finite()) => {
                return Err(SpecError::BadValue(format!(
                    "\"failure.period\" {p} must be a positive finite number"
                )));
            }
            None if self.graphs.iter().any(|g| g != "workload") => {
                return Err(SpecError::BadValue(
                    "\"failure.period\" is required for fig graph families".into(),
                ));
            }
            _ => {}
        }
        if let Some(p) = &f.policy {
            if !matches!(p.as_str(), "fail-stop" | "reroute") {
                return Err(SpecError::BadValue(format!(
                    "\"failure.policy\" {p:?} must be \"fail-stop\" or \"reroute\""
                )));
            }
        }
        if let Some(e) = &f.engine {
            if ltf_faultlab::SimEngine::parse(e).is_none() {
                return Err(SpecError::BadValue(format!(
                    "\"failure.engine\" {e:?} must be \"synchronous\" or \"asap\""
                )));
            }
        }
        // Each cell replays one concrete ε: bands must be explicit and
        // bounded (the Pareto default "ε up to m−1" depends on a platform
        // prefix no SLO cell sweeps).
        let bounded = self
            .epsilons
            .as_ref()
            .is_some_and(|eps| eps.iter().all(|b| b.max.is_some()));
        if !bounded {
            return Err(SpecError::BadValue(
                "SLO campaigns need explicit bounded \"epsilons\" bands (each with \"max\")".into(),
            ));
        }
        if self.heuristics.iter().any(|h| h == "all") {
            return Err(SpecError::BadValue(
                "SLO campaigns need concrete heuristics (\"all\" has no single witness)".into(),
            ));
        }
        if let Some(s) = &self.slo {
            if let Some(l) = s.max_latency {
                if !(l > 0.0 && l.is_finite()) {
                    return Err(SpecError::BadValue(format!(
                        "\"slo.max_latency\" {l} must be a positive finite number"
                    )));
                }
            }
            if let Some(v) = s.max_violation_rate {
                if !(0.0..=1.0).contains(&v) || v.is_nan() {
                    return Err(SpecError::BadValue(format!(
                        "\"slo.max_violation_rate\" {v} must be in [0, 1]"
                    )));
                }
            }
        }
        Ok(())
    }
}
