//! SLO campaigns: stochastic failure sweeps over the campaign matrix.
//!
//! A spec with a [`FailureSpec`] block runs a different pipeline than a
//! Pareto campaign. Each **cell** is one concrete (graph instance,
//! heuristic, ε) point: the ε bands expand to individual degrees and the
//! instance axis to individual seeds, because every cell solves exactly
//! one witness schedule ([`AlgoConfig::new`] at the cell's period) and
//! replays sampled crash traces through it. The **work item** — the unit
//! of sharding, checkpointing, and retry — is one *trace block*:
//! [`FailureSpec::block`] consecutive traces of one cell.
//!
//! Determinism contract (pinned by tests and the CI smoke): the rendered
//! [`SloReport`] is byte-identical for the same spec + seed regardless of
//! thread count, shard count, or crash/retry history, because
//!
//! 1. trace `t` of cell `c` is sampled from the split stream keyed by
//!    *(campaign signature, `c·traces + t`)* — a pure function of the
//!    spec, never of which worker drew it;
//! 2. trace blocks fold into [`CellStats`] in ascending trace order, and
//!    the merge re-orders blocks by global item index before cells are
//!    aggregated — so every digest is built in one canonical order;
//! 3. conflicting duplicate items are rejected by the
//!    [`Merger`], exactly as in Pareto campaigns.
//!
//! See `docs/slo-campaign.md` for the spec format and report fields.

use super::merge::{CampaignResult, Merger};
use super::spec::{CampaignSpec, Experiment, FailureSpec};
use super::worker::ABORT_ENV;
use crate::checkpoint::{resume_chunks, Checkpoint};
use crate::figures::window_for;
use crate::pareto::ParetoInstance;
use crate::workload::gen_instance_on;
use ltf_baselines::full_solver;
use ltf_core::shard::Shard;
use ltf_core::AlgoConfig;
use ltf_faultlab::{
    replay, CellStats, FailureModel, ReplayConfig, SimEngine, SloReport, SloRow, SloThreshold,
};
use ltf_sim::RecoveryPolicy;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashSet;
use std::io::Write;
use std::path::Path;

/// One SLO cell: a concrete (experiment, ε, instance) point with its own
/// witness schedule and trace stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SloCell {
    /// Position in cell expansion order (keys the trace streams).
    pub index: usize,
    /// Label: the experiment label plus `/eps=E/inst=K`.
    pub label: String,
    /// Index into the expanded experiment list.
    pub experiment: usize,
    /// The concrete replication degree the witness is solved at.
    pub epsilon: u8,
    /// Instance number within the experiment.
    pub instance: usize,
    /// The instance's deterministic seed.
    pub seed: u64,
}

/// Expand experiments into SLO cells: each bounded ε band unrolls to its
/// individual degrees, each instance to its own cell. Deterministic in
/// the experiment list alone.
pub fn slo_cells(exps: &[Experiment]) -> Vec<SloCell> {
    let mut out = Vec::new();
    for exp in exps {
        let lo = exp.opts.min_epsilon.unwrap_or(0);
        let hi = exp
            .opts
            .max_epsilon
            .expect("SLO specs validate to bounded ε bands");
        for e in lo..=hi {
            for k in 0..exp.instances {
                out.push(SloCell {
                    index: out.len(),
                    label: format!("{}/eps={e}/inst={k}", exp.label),
                    experiment: exp.index,
                    epsilon: e,
                    instance: k,
                    seed: exp.base_seed.wrapping_add(k as u64),
                });
            }
        }
    }
    out
}

/// One unit of SLO work: traces `t0..t1` of cell `cell`, at global
/// position `item` (the sharding key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloWorkItem {
    /// Global index across all cells.
    pub item: usize,
    /// Cell index.
    pub cell: usize,
    /// First trace of the block (inclusive).
    pub t0: usize,
    /// Last trace of the block (exclusive).
    pub t1: usize,
}

/// Flatten cells into the global trace-block list (cell-major, block
/// order within a cell ascending).
pub fn slo_work_items(f: &FailureSpec, cells: &[SloCell]) -> Vec<SloWorkItem> {
    let traces = f.traces();
    let block = f.block();
    let mut out = Vec::new();
    for cell in cells {
        let mut t0 = 0;
        while t0 < traces {
            let t1 = (t0 + block).min(traces);
            out.push(SloWorkItem {
                item: out.len(),
                cell: cell.index,
                t0,
                t1,
            });
            t0 = t1;
        }
    }
    out
}

/// The completed result of one trace block: the journal record, the
/// worker stdout line, and the unit the coordinator merges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloItemResult {
    /// Global work-item index.
    pub item: u64,
    /// Cell index the block belongs to.
    pub cell: u64,
    /// The cell's label (carried so merged output is self-describing).
    pub label: String,
    /// Whether the cell's witness schedule exists. Every block of a cell
    /// re-derives this identically; the merge cross-checks.
    pub feasible: bool,
    /// The block's accumulated statistics.
    pub stats: CellStats,
}

impl CampaignResult for SloItemResult {
    fn item_index(&self) -> u64 {
        self.item
    }

    fn summary(&self) -> String {
        format!(
            "cell {} ({:?}), {} traces, feasible={}",
            self.cell, self.label, self.stats.traces, self.feasible
        )
    }
}

/// The spec's declared objective as the faultlab threshold (default:
/// zero tolerance, losses only).
pub fn slo_threshold(spec: &CampaignSpec) -> SloThreshold {
    spec.slo
        .as_ref()
        .map(|s| SloThreshold {
            max_latency: s.max_latency,
            max_violation_rate: s.max_violation_rate,
        })
        .unwrap_or_default()
}

fn policy_of(f: &FailureSpec) -> RecoveryPolicy {
    match f.policy.as_deref() {
        Some("reroute") => RecoveryPolicy::Reroute,
        _ => RecoveryPolicy::FailStop,
    }
}

fn engine_of(f: &FailureSpec) -> SimEngine {
    f.engine
        .as_deref()
        .and_then(SimEngine::parse)
        .unwrap_or(SimEngine::Synchronous)
}

/// Compute one trace block: materialize the cell's instance, solve its
/// witness, and replay the block's traces. Self-contained — any shard,
/// thread, or retry computes the identical result from `(spec, item)`
/// alone. An infeasible cell yields empty stats with `feasible: false`;
/// a witness that fails validation is a scheduler bug and panics.
pub fn compute_slo_item(
    spec: &CampaignSpec,
    exps: &[Experiment],
    cells: &[SloCell],
    sig: u64,
    wi: &SloWorkItem,
) -> SloItemResult {
    let f = spec
        .failure
        .as_ref()
        .expect("SLO campaign has a failure block");
    let cell = &cells[wi.cell];
    let exp = &exps[cell.experiment];
    let (g, p, period) = match exp.family {
        ParetoInstance::Workload => {
            let mut wl = exp.workload.clone();
            wl.epsilon = cell.epsilon;
            let inst = gen_instance_on(&wl, cell.seed, exp.topology.as_ref());
            let period = f.period.unwrap_or(inst.period);
            (inst.graph, inst.platform, period)
        }
        fam => {
            let (g, p, _) = fam.build(cell.seed, exp.workload.utilization);
            let period = f
                .period
                .expect("validated: fig families require failure.period");
            (g, p, period)
        }
    };
    let solver = full_solver(&g, &p);
    let mut stats = CellStats::new();
    let mut feasible = false;
    if let Ok(sol) = solver.solve(&exp.algo, &AlgoConfig::new(cell.epsilon, period)) {
        if let Err(e) = ltf_schedule::validate(&g, &p, &sol.schedule) {
            panic!(
                "slo item {} ({}): witness fails validation: {e:?}",
                wi.item, cell.label
            );
        }
        feasible = true;
        let m = p.num_procs();
        let model = match (&f.rate, &f.rates) {
            (Some(r), None) => FailureModel::uniform(m, *r),
            (None, Some(rs)) => {
                assert_eq!(
                    rs.len(),
                    m,
                    "failure.rates has {} entries but cell {} has {m} processors",
                    rs.len(),
                    cell.label
                );
                FailureModel::from_rates(rs.clone())
            }
            _ => unreachable!("validated: exactly one of rate/rates"),
        };
        let slo = slo_threshold(spec);
        let cfg = ReplayConfig {
            items: f.items(),
            policy: policy_of(f),
            engine: engine_of(f),
        };
        let traces = f.traces();
        for t in wi.t0..wi.t1 {
            let stream = (cell.index * traces + t) as u64;
            let trace = model.sample_trace(sig, stream);
            stats.record(&replay(&g, &p, &sol.schedule, trace, &cfg), &slo);
        }
    }
    SloItemResult {
        item: wi.item as u64,
        cell: cell.index as u64,
        label: cell.label.clone(),
        feasible,
        stats,
    }
}

/// The journal key of SLO work item `item` under a spec with fingerprint
/// `sig`. The `slo:` prefix keeps these records disjoint from Pareto
/// campaign records even in a shared journal file.
pub fn slo_journal_key(name: &str, sig: u64, item: usize) -> String {
    format!("slo:{name}:{sig:016x}:item={item:06}")
}

/// Run one shard of an SLO campaign: compute every trace block the shard
/// owns (journal-replayed blocks first, then fresh ones, each exactly
/// once) and stream each [`SloItemResult`] through `emit`. The shape
/// mirrors `run_shard` deliberately — same checkpoint machinery, same
/// round-robin sharding, same emit contract.
pub fn run_slo_shard(
    spec: &CampaignSpec,
    shard: Shard,
    threads: usize,
    journal: Option<&Path>,
    mut emit: impl FnMut(&SloItemResult),
) -> Result<usize, String> {
    let exps = spec.expand().map_err(|e| e.to_string())?;
    let f = spec
        .failure
        .as_ref()
        .ok_or_else(|| "slo: spec has no \"failure\" block".to_string())?;
    let cells = slo_cells(&exps);
    let owned: Vec<SloWorkItem> = slo_work_items(f, &cells)
        .into_iter()
        .filter(|wi| shard.owns(wi.item))
        .collect();
    let sig = spec.signature();
    let key = |wi: &SloWorkItem| slo_journal_key(&spec.name, sig, wi.item);
    let expected: HashSet<String> = owned.iter().map(key).collect();
    let mut emitted = 0usize;
    let mut ckpt = match journal {
        Some(path) => Some(
            Checkpoint::open(path, |k, value| {
                if !expected.contains(k) {
                    return false; // different campaign or shard sharing the file
                }
                match SloItemResult::from_value(value) {
                    Ok(r) => {
                        emitted += 1;
                        emit(&r);
                        true
                    }
                    Err(e) => {
                        eprintln!(
                            "warning: checkpoint: record {k} does not decode ({e}); recomputing"
                        );
                        false
                    }
                }
            })
            .map_err(|e| format!("checkpoint: {e}"))?,
        ),
        None => None,
    };
    resume_chunks(
        &owned,
        threads,
        window_for(threads),
        &mut ckpt,
        key,
        |wi| compute_slo_item(spec, &exps, &cells, sig, wi),
        |_, r: SloItemResult| {
            emitted += 1;
            emit(&r);
        },
    )
    .map_err(|e| format!("checkpoint: {e}"))?;
    Ok(emitted)
}

/// Aggregate merged results (global item order) into the campaign's
/// [`SloReport`]: blocks fold into their cells in item order — the
/// canonical digest-merge order the byte-identity contract names — and a
/// feasibility disagreement between blocks of one cell is a determinism
/// violation.
pub fn build_slo_report(
    spec: &CampaignSpec,
    results: &[SloItemResult],
) -> Result<SloReport, String> {
    let exps = spec.expand().map_err(|e| e.to_string())?;
    let cells = slo_cells(&exps);
    let slo = slo_threshold(spec);
    let mut acc: Vec<Option<(bool, CellStats)>> = vec![None; cells.len()];
    for r in results {
        let c = r.cell as usize;
        if c >= cells.len() {
            return Err(format!(
                "slo merge: cell {c} out of range (campaign has {} cells)",
                cells.len()
            ));
        }
        match &mut acc[c] {
            None => acc[c] = Some((r.feasible, r.stats.clone())),
            Some((feasible, stats)) => {
                if *feasible != r.feasible {
                    return Err(format!(
                        "slo merge: determinism violation: cell {c} ({:?}) blocks disagree \
                         on feasibility",
                        r.label
                    ));
                }
                stats.merge(&r.stats);
            }
        }
    }
    let rows = cells
        .iter()
        .map(|cell| {
            let (feasible, stats) = match &acc[cell.index] {
                Some((f, s)) => (*f, s.clone()),
                None => (false, CellStats::new()),
            };
            SloRow::from_stats(
                cell.index as u64,
                cell.label.clone(),
                feasible,
                &stats,
                &slo,
            )
        })
        .collect();
    Ok(SloReport { rows })
}

/// Run the whole SLO campaign in this process and build its report — the
/// golden reference every distributed run is compared against, via the
/// same one-shard worker and merge path.
pub fn run_slo_serial(
    spec: &CampaignSpec,
    threads: usize,
    journal: Option<&Path>,
) -> Result<SloReport, String> {
    let exps = spec.expand().map_err(|e| e.to_string())?;
    let f = spec
        .failure
        .as_ref()
        .ok_or_else(|| "slo: spec has no \"failure\" block".to_string())?;
    let expected = slo_work_items(f, &slo_cells(&exps)).len();
    let mut collected = Vec::new();
    run_slo_shard(spec, Shard::solo(), threads, journal, |r| {
        collected.push(r.clone());
    })?;
    let mut merger: Merger<SloItemResult> = Merger::new(expected);
    for r in collected {
        merger.insert(r)?;
    }
    build_slo_report(spec, &merger.finish()?)
}

/// The SLO worker wire: one JSON line per [`SloItemResult`] plus the
/// same `{"done":true,...}` trailer as Pareto workers, so the
/// coordinator's child supervision (done/exit handshake, crash retry,
/// [`ABORT_ENV`] injection) is shared between the two campaign kinds.
pub fn slo_worker_main(
    spec: &CampaignSpec,
    shard: Shard,
    threads: usize,
    journal: Option<&Path>,
    out: &mut impl Write,
) -> Result<usize, String> {
    let abort_marker = std::env::var_os(ABORT_ENV).map(std::path::PathBuf::from);
    let mut io_err: Option<String> = None;
    let emitted = run_slo_shard(spec, shard, threads, journal, |r| {
        if io_err.is_some() {
            return;
        }
        let line = serde_json::to_string(r).expect("value writer is infallible");
        if let Err(e) = writeln!(out, "{line}").and_then(|()| out.flush()) {
            io_err = Some(format!("worker stdout: {e}"));
            return;
        }
        if let Some(marker) = &abort_marker {
            if !marker.exists() {
                // First incarnation: leave the marker so the retry
                // survives, then die without unwinding — the same
                // failure the SIGKILL CI smoke injects.
                let _ = std::fs::write(marker, b"aborted\n");
                std::process::abort();
            }
        }
    })?;
    if let Some(e) = io_err {
        return Err(e);
    }
    let done = Value::Map(vec![
        ("done".to_string(), Value::Bool(true)),
        ("shard".to_string(), Value::Str(shard.to_string())),
        ("items".to_string(), Value::UInt(emitted as u64)),
    ]);
    let line = serde_json::to_string(&done).expect("value writer is infallible");
    writeln!(out, "{line}")
        .and_then(|()| out.flush())
        .map_err(|e| format!("worker stdout: {e}"))?;
    Ok(emitted)
}
