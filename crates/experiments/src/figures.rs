//! The paper's evaluation figures (§5, Figs. 3 and 4).
//!
//! Every figure sweeps the granularity from 0.2 to 2.0 (step 0.2) with 60
//! random graphs per point on 20 processors, throughput `1/(10(ε+1))`:
//!
//! * panel (a) — latency bounds: {R-LTF, LTF} × {With 0 Crash, UpperBound};
//! * panel (b) — latency with crashes: {R-LTF, LTF} × {0, c} crashes
//!   (`c = 1` for ε = 1, `c = 2` for ε = 3);
//! * panel (c) — fault-tolerance overhead (%) against the fault-free
//!   reference schedule: `(L_algo − L_FF) / L_FF`.

use crate::checkpoint::{resume_chunks, Checkpoint};
use crate::runner::{measure_instance, RunRecord};
use crate::stats::{Figure, Series, SeriesPoint};
use crate::workload::PaperWorkload;
use std::collections::HashMap;
use std::path::Path;

/// Sweep configuration (defaults = the paper's settings).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Random graphs per point; paper: 60.
    pub graphs_per_point: usize,
    /// Granularities; paper: 0.2, 0.4, …, 2.0.
    pub granularities: Vec<f64>,
    /// Crash draws per instance when measuring latency under failures.
    pub crash_draws: usize,
    /// Base seed; instance seeds derive deterministically from it.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Target utilization `U*` of the calibration (DESIGN.md §2.8).
    pub utilization: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            graphs_per_point: 60,
            granularities: (1..=10).map(|i| i as f64 * 0.2).collect(),
            crash_draws: 10,
            seed: 0xB10B,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            utilization: 0.25,
        }
    }
}

impl SweepConfig {
    /// A reduced sweep for tests and benches.
    pub fn quick(graphs_per_point: usize) -> Self {
        Self {
            graphs_per_point,
            granularities: vec![0.4, 1.0, 1.6],
            crash_draws: 4,
            ..Default::default()
        }
    }
}

/// Which panel of the figure to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// (a): guaranteed bound vs failure-free effective latency.
    Bounds,
    /// (b): effective latency with 0 vs `c` crashes.
    Crashes,
    /// (c): overhead (%) against the fault-free reference.
    Overhead,
}

/// Raw sweep output: all records grouped by granularity.
#[derive(Debug, Clone)]
pub struct SweepData {
    /// ε used for the sweep.
    pub epsilon: u8,
    /// Crash count `c` used for the crash columns.
    pub crashes: usize,
    /// `(granularity, records of every instance × algorithm)`.
    pub by_granularity: Vec<(f64, Vec<RunRecord>)>,
}

/// Run the full sweep for one ε. `crashes` follows the paper: 1 for ε = 1,
/// 2 for ε = 3 (pass explicitly for other settings).
pub fn sweep(epsilon: u8, crashes: usize, cfg: &SweepConfig) -> SweepData {
    sweep_checkpointed(epsilon, crashes, cfg, None).expect("no journal, no I/O to fail")
}

/// [`sweep`] with an optional `--checkpoint` journal: every completed
/// `(granularity, seed)` work item (its three records: LTF, R-LTF, FF) is
/// journalled as soon as its window completes, and a restart with the
/// same journal replays completed items instead of re-measuring them.
/// Records are assembled in seed order per granularity whether they were
/// replayed or fresh, so a resumed sweep produces the same `SweepData`
/// as an uninterrupted one.
pub fn sweep_checkpointed(
    epsilon: u8,
    crashes: usize,
    cfg: &SweepConfig,
    journal: Option<&Path>,
) -> std::io::Result<SweepData> {
    // The key pins *every* parameter the measured records depend on (the
    // granularity value itself, not its sweep index, plus crash draws and
    // utilization; the seed already derives from cfg.seed): resuming with
    // a different configuration finds no matching keys and recomputes,
    // instead of silently replaying records measured under different
    // parameters.
    let keyed = |g: f64, seed: u64| {
        format!(
            "fig:eps={epsilon}:c={crashes}:g={g}:cd={}:u={}:seed={seed:#018x}",
            cfg.crash_draws, cfg.utilization
        )
    };
    let seeds_at = |gi: usize| -> Vec<u64> {
        (0..cfg.graphs_per_point)
            .map(|k| cfg.seed ^ (gi as u64) << 32 ^ (epsilon as u64) << 48 ^ k as u64)
            .collect()
    };
    let expected: std::collections::HashSet<String> = cfg
        .granularities
        .iter()
        .enumerate()
        .flat_map(|(gi, &g)| seeds_at(gi).into_iter().map(move |s| keyed(g, s)))
        .collect();
    let mut replayed: HashMap<String, Vec<RunRecord>> = HashMap::new();
    let mut ckpt = match journal {
        Some(path) => Some(Checkpoint::open(path, |key, value| {
            if !expected.contains(key) {
                return false; // another sweep/config's records share the journal
            }
            let serde::Value::Seq(items) = value else {
                eprintln!("warning: checkpoint: record {key} has the wrong shape; recomputing");
                return false;
            };
            let recs: Option<Vec<RunRecord>> = items.iter().map(RunRecord::from_value).collect();
            match recs {
                Some(recs) => {
                    replayed.insert(key.to_string(), recs);
                    true
                }
                None => {
                    eprintln!("warning: checkpoint: record {key} does not decode; recomputing");
                    false
                }
            }
        })?),
        None => None,
    };
    let mut by_granularity = Vec::with_capacity(cfg.granularities.len());
    for (gi, &g) in cfg.granularities.iter().enumerate() {
        let wl = PaperWorkload {
            epsilon,
            granularity: g,
            utilization: cfg.utilization,
            ..Default::default()
        };
        let seeds = seeds_at(gi);
        let mut fresh: HashMap<u64, Vec<RunRecord>> = HashMap::new();
        resume_chunks(
            &seeds,
            cfg.threads,
            window_for(cfg.threads),
            &mut ckpt,
            |s| keyed(g, *s),
            |s| measure_instance(&wl, *s, crashes, cfg.crash_draws),
            |s, recs| {
                fresh.insert(*s, recs);
            },
        )?;
        let recs: Vec<RunRecord> = seeds
            .iter()
            .flat_map(|s| {
                fresh
                    .remove(s)
                    .or_else(|| replayed.remove(&keyed(g, *s)))
                    .expect("every seed is fresh or replayed")
            })
            .collect();
        by_granularity.push((g, recs));
    }
    Ok(SweepData {
        epsilon,
        crashes,
        by_granularity,
    })
}

/// Window of in-flight work items per [`resume_chunks`] call: enough to
/// keep every worker busy, small enough to bound both memory and the
/// work a kill can lose.
pub fn window_for(threads: usize) -> usize {
    (threads.max(1) * 4).max(16)
}

fn collect<'a>(recs: &'a [RunRecord], algo: &'a str) -> impl Iterator<Item = &'a RunRecord> + 'a {
    recs.iter().filter(move |r| r.algo == algo && r.feasible)
}

/// Build one panel from sweep data.
pub fn panel(data: &SweepData, panel: Panel) -> Figure {
    let eps = data.epsilon;
    let c = data.crashes;
    let mut series: Vec<Series> = Vec::new();

    let mut push_series = |name: String, f: &dyn Fn(&[RunRecord]) -> Vec<f64>| {
        let points = data
            .by_granularity
            .iter()
            .filter_map(|(g, recs)| SeriesPoint::from_sample(*g, &f(recs)))
            .collect();
        series.push(Series { name, points });
    };

    match panel {
        Panel::Bounds => {
            for algo in ["R-LTF", "LTF"] {
                push_series(format!("{algo} With 0 Crash"), &move |recs| {
                    collect(recs, algo).map(|r| r.latency_0).collect()
                });
                push_series(format!("{algo} UpperBound"), &move |recs| {
                    collect(recs, algo).map(|r| r.latency_ub).collect()
                });
            }
        }
        Panel::Crashes => {
            for algo in ["R-LTF", "LTF"] {
                push_series(format!("{algo} With 0 Crash"), &move |recs| {
                    collect(recs, algo).map(|r| r.latency_0).collect()
                });
                push_series(format!("{algo} With {c} Crash"), &move |recs| {
                    collect(recs, algo)
                        .filter_map(|r| r.latency_crash)
                        .collect()
                });
            }
        }
        Panel::Overhead => {
            for algo in ["R-LTF", "LTF"] {
                for crashed in [false, true] {
                    let label = if crashed {
                        format!("{algo} With {c} Crash")
                    } else {
                        format!("{algo} With 0 Crash")
                    };
                    push_series(label, &move |recs| {
                        // Pair each run with the fault-free reference of the
                        // same seed.
                        let mut out = Vec::new();
                        for r in collect(recs, algo) {
                            let Some(ff) = recs
                                .iter()
                                .find(|f| f.algo == "FF" && f.seed == r.seed && f.feasible)
                            else {
                                continue;
                            };
                            let l = if crashed {
                                match r.latency_crash {
                                    Some(l) => l,
                                    None => continue,
                                }
                            } else {
                                r.latency_0
                            };
                            if ff.latency_0 > 0.0 {
                                out.push(100.0 * (l - ff.latency_0) / ff.latency_0);
                            }
                        }
                        out
                    });
                }
            }
        }
    }

    let (suffix, ylabel, title) = match panel {
        Panel::Bounds => ("a", "Normalized Latency", "Latency bounds"),
        Panel::Crashes => ("b", "Normalized Latency", "Latency with crash"),
        Panel::Overhead => ("c", "Average Overhead (%)", "Fault tolerance overhead"),
    };
    let fignum = if eps == 1 { 3 } else { 4 };
    Figure {
        id: format!("fig{fignum}{suffix}"),
        title: format!("{title} (ε = {eps}, c = {c})"),
        xlabel: "Granularity".into(),
        ylabel: ylabel.into(),
        series,
    }
}

/// Fraction of instances each algorithm scheduled successfully, per
/// granularity — reported alongside the figures (the paper implies 100%).
pub fn feasibility(data: &SweepData) -> Figure {
    let mut series = Vec::new();
    for algo in ["R-LTF", "LTF", "FF"] {
        let points = data
            .by_granularity
            .iter()
            .filter_map(|(g, recs)| {
                let total = recs.iter().filter(|r| r.algo == algo).count();
                let ok = recs.iter().filter(|r| r.algo == algo && r.feasible).count();
                SeriesPoint::from_sample(
                    *g,
                    &[if total == 0 {
                        0.0
                    } else {
                        100.0 * ok as f64 / total as f64
                    }],
                )
            })
            .collect();
        series.push(Series {
            name: algo.to_string(),
            points,
        });
    }
    Figure {
        id: format!("feasibility_eps{}", data.epsilon),
        title: format!("Scheduling success rate (ε = {})", data.epsilon),
        xlabel: "Granularity".into(),
        ylabel: "Success (%)".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep(epsilon: u8, crashes: usize) -> SweepData {
        let cfg = SweepConfig {
            graphs_per_point: 3,
            granularities: vec![0.6, 1.4],
            crash_draws: 2,
            threads: 4,
            ..Default::default()
        };
        sweep(epsilon, crashes, &cfg)
    }

    #[test]
    fn sweep_structure() {
        let data = tiny_sweep(1, 1);
        assert_eq!(data.by_granularity.len(), 2);
        for (_, recs) in &data.by_granularity {
            assert_eq!(recs.len(), 9); // 3 seeds × 3 algorithms
        }
    }

    #[test]
    fn panels_have_expected_series() {
        let data = tiny_sweep(1, 1);
        let a = panel(&data, Panel::Bounds);
        assert_eq!(a.id, "fig3a");
        assert_eq!(a.series.len(), 4);
        let b = panel(&data, Panel::Crashes);
        assert_eq!(b.series.len(), 4);
        assert!(b.series[1].name.contains("1 Crash"));
        let c = panel(&data, Panel::Overhead);
        assert_eq!(c.series.len(), 4);
        let feas = feasibility(&data);
        assert_eq!(feas.series.len(), 3);
    }

    #[test]
    fn rltf_no_worse_than_ltf_on_average() {
        let data = tiny_sweep(1, 1);
        let fig = panel(&data, Panel::Bounds);
        let rltf = &fig.series[0]; // R-LTF With 0 Crash
        let ltf = &fig.series[2]; // LTF With 0 Crash
        for (rp, lp) in rltf.points.iter().zip(&ltf.points) {
            assert!(
                rp.mean <= lp.mean * 1.25 + 1e-9,
                "R-LTF should not be far above LTF: {} vs {}",
                rp.mean,
                lp.mean
            );
        }
    }
}
