//! Design ablations: what each mechanism of the heuristics buys.
//!
//! Variants (all on identical instances):
//!
//! * `R-LTF` — the full algorithm;
//! * `R-LTF -rule1` — stage-count preference disabled;
//! * `R-LTF -rule2` — linear-chain one-to-one spreading disabled;
//! * `R-LTF -oto` / `LTF -oto` — one-to-one mapping disabled entirely
//!   (every replica receives from all copies: the `(ε+1)²` regime);
//! * `LTF` — the full forward heuristic;
//! * `LTF B=1` — chunk size 1 (classical one-task-at-a-time list
//!   scheduling instead of the paper's `B = m` chunks).

use crate::runner::parallel_map;
use crate::workload::{gen_instance, PaperWorkload};
use ltf_core::{AlgoConfig, AlgoKind, PreparedInstance};
use serde::Serialize;

/// Aggregated outcome of one variant.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRecord {
    /// Variant label.
    pub variant: String,
    /// Instances scheduled successfully.
    pub feasible: usize,
    /// Total instances.
    pub total: usize,
    /// Mean stage count over feasible runs.
    pub stages: f64,
    /// Mean guaranteed latency over feasible runs.
    pub latency: f64,
    /// Mean message count over feasible runs.
    pub comms: f64,
}

/// Configuration for [`ablation`].
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Fault-tolerance degree.
    pub epsilon: u8,
    /// Instance granularity.
    pub granularity: f64,
    /// Number of instances.
    pub instances: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for AblationConfig {
    fn default() -> Self {
        Self {
            epsilon: 1,
            granularity: 1.0,
            instances: 30,
            seed: 0xAB1A7E,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

struct Variant {
    label: &'static str,
    kind: AlgoKind,
    tweak: fn(&mut AlgoConfig),
}

const VARIANTS: &[Variant] = &[
    Variant {
        label: "R-LTF",
        kind: AlgoKind::Rltf,
        tweak: |_| {},
    },
    Variant {
        label: "R-LTF -rule1",
        kind: AlgoKind::Rltf,
        tweak: |c| c.rule1 = false,
    },
    Variant {
        label: "R-LTF -rule2",
        kind: AlgoKind::Rltf,
        tweak: |c| c.rule2 = false,
    },
    Variant {
        label: "R-LTF -oto",
        kind: AlgoKind::Rltf,
        tweak: |c| c.use_one_to_one = false,
    },
    Variant {
        label: "R-LTF -cluster",
        kind: AlgoKind::Rltf,
        tweak: |c| c.cluster_ties = false,
    },
    Variant {
        label: "LTF",
        kind: AlgoKind::Ltf,
        tweak: |_| {},
    },
    Variant {
        label: "LTF -oto",
        kind: AlgoKind::Ltf,
        tweak: |c| c.use_one_to_one = false,
    },
    Variant {
        label: "LTF B=1",
        kind: AlgoKind::Ltf,
        tweak: |c| c.chunk_size = Some(1),
    },
];

/// Run every variant over the same instance set.
pub fn ablation(cfg: &AblationConfig) -> Vec<AblationRecord> {
    let wl = PaperWorkload {
        epsilon: cfg.epsilon,
        granularity: cfg.granularity,
        ..Default::default()
    };
    let seeds: Vec<u64> = (0..cfg.instances).map(|k| cfg.seed ^ k as u64).collect();

    VARIANTS
        .iter()
        .map(|variant| {
            let outcomes = parallel_map(&seeds, cfg.threads, |s| {
                let inst = gen_instance(&wl, s);
                let mut acfg = AlgoConfig::new(cfg.epsilon, inst.period).seeded(s);
                (variant.tweak)(&mut acfg);
                let prep = PreparedInstance::new(&inst.graph, &inst.platform);
                variant
                    .kind
                    .heuristic()
                    .schedule(&prep, &acfg)
                    .ok()
                    .map(|sch| {
                        (
                            sch.num_stages() as f64,
                            sch.latency_upper_bound(),
                            sch.comm_count() as f64,
                        )
                    })
            });
            let ok: Vec<_> = outcomes.iter().flatten().collect();
            let n = ok.len().max(1) as f64;
            AblationRecord {
                variant: variant.label.to_string(),
                feasible: ok.len(),
                total: cfg.instances,
                stages: ok.iter().map(|o| o.0).sum::<f64>() / n,
                latency: ok.iter().map(|o| o.1).sum::<f64>() / n,
                comms: ok.iter().map(|o| o.2).sum::<f64>() / n,
            }
        })
        .collect()
}

/// Render ablation records as an aligned text table.
pub fn table(records: &[AblationRecord]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "{:<14} {:>9} {:>8} {:>12} {:>8}",
        "variant", "feasible", "stages", "latency", "comms"
    )
    .unwrap();
    for r in records {
        writeln!(
            s,
            "{:<14} {:>5}/{:<3} {:>8.2} {:>12.1} {:>8.1}",
            r.variant, r.feasible, r.total, r.stages, r.latency, r.comms
        )
        .unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_all_variants() {
        let cfg = AblationConfig {
            instances: 3,
            threads: 4,
            ..Default::default()
        };
        let recs = ablation(&cfg);
        assert_eq!(recs.len(), 8);
        assert!(recs.iter().any(|r| r.variant == "R-LTF"));
        assert!(recs.iter().any(|r| r.variant == "LTF B=1"));
        let t = table(&recs);
        assert!(t.contains("R-LTF -oto"));
    }
}
