//! The paper's random workload (§5), fully calibrated.
//!
//! Published parameters: 50–150 tasks, granularity swept from 0.2 to 2.0,
//! `m = 20` processors, desired throughput `1/(10(ε+1))` (period `Δ = 20`
//! for ε = 1, `Δ = 40` for ε = 3), message volumes in `[50, 150]`, link
//! unit delays in `[0.5, 1]`, 60 random graphs per point.
//!
//! Unpublished parameters we calibrate (DESIGN.md §2.8): processor speeds
//! in `[0.5, 1]`, base task execution times in `[50, 150]`, then two exact
//! rescalings — granularity scaling of the execution times so `g(G, P)`
//! hits the target, and a global time rescaling (execution times *and*
//! volumes, preserving `g`) pinning the average replicated processor
//! utilization `(ε+1)·ΣE·mean(1/s) / (m·Δ)` to a fixed `U*`.

use crate::campaign::TopologySpec;
use ltf_graph::generate::{layered, LayeredConfig};
use ltf_graph::TaskGraph;
use ltf_platform::{HeterogeneousConfig, Platform};
use ltf_schedule::granularity::granularity_scale_factor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload configuration (defaults reproduce §5).
#[derive(Debug, Clone)]
pub struct PaperWorkload {
    /// Task count range (inclusive); paper: `[50, 150]`.
    pub tasks: (usize, usize),
    /// Number of processors; paper: 20.
    pub procs: usize,
    /// Fault-tolerance degree ε; paper: {1, 3}.
    pub epsilon: u8,
    /// Target granularity `g(G, P)`; paper sweeps 0.2–2.0.
    pub granularity: f64,
    /// Target average replicated processor utilization `U*`.
    pub utilization: f64,
    /// Message volume range; paper: `[50, 150]`.
    pub volumes: (f64, f64),
    /// Link unit delay range; paper: `[0.5, 1]`.
    pub delays: (f64, f64),
    /// Processor speed range (calibrated; heterogeneous).
    pub speeds: (f64, f64),
}

impl Default for PaperWorkload {
    fn default() -> Self {
        Self {
            tasks: (50, 150),
            procs: 20,
            epsilon: 1,
            granularity: 1.0,
            utilization: 0.25,
            volumes: (50.0, 150.0),
            delays: (0.5, 1.0),
            speeds: (0.5, 1.0),
        }
    }
}

impl PaperWorkload {
    /// Paper configuration for a given ε and granularity.
    pub fn paper(epsilon: u8, granularity: f64) -> Self {
        Self {
            epsilon,
            granularity,
            ..Default::default()
        }
    }

    /// The paper's period `Δ = 10(ε+1)` (throughput `1/(10(ε+1))`).
    pub fn period(&self) -> f64 {
        10.0 * (self.epsilon as f64 + 1.0)
    }
}

/// One generated problem instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The calibrated application graph.
    pub graph: TaskGraph,
    /// The random heterogeneous platform.
    pub platform: Platform,
    /// The required period `Δ`.
    pub period: f64,
    /// Fault-tolerance degree ε.
    pub epsilon: u8,
}

/// Generate a calibrated instance. Deterministic in `(cfg, seed)`.
pub fn gen_instance(cfg: &PaperWorkload, seed: u64) -> Instance {
    gen_instance_on(cfg, seed, None)
}

/// Generate a calibrated instance, optionally routing the platform through
/// a declared interconnect. With `topology = None` this is exactly
/// [`gen_instance`]; with a topology the processor speeds are still drawn
/// from `cfg.speeds`, but the delay matrix is derived from the declared
/// links (and, under the contended model, the platform keeps link
/// identity) instead of being sampled from `cfg.delays`. Deterministic in
/// `(cfg, seed, topology)`.
pub fn gen_instance_on(
    cfg: &PaperWorkload,
    seed: u64,
    topology: Option<&TopologySpec>,
) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let v = if cfg.tasks.0 == cfg.tasks.1 {
        cfg.tasks.0
    } else {
        rng.gen_range(cfg.tasks.0..=cfg.tasks.1)
    };
    let gcfg = LayeredConfig {
        tasks: v,
        exec_range: (50.0, 150.0),
        volume_range: cfg.volumes,
        ..Default::default()
    };
    let mut graph = layered(&gcfg, &mut rng);
    let platform = match topology {
        None => HeterogeneousConfig {
            procs: cfg.procs,
            speed_range: cfg.speeds,
            delay_range: cfg.delays,
            symmetric: true,
        }
        .build(&mut rng),
        Some(t) => {
            let (lo, hi) = cfg.speeds;
            assert!(lo <= hi && lo > 0.0, "invalid speed range");
            let speeds = (0..cfg.procs)
                .map(|_| if lo == hi { lo } else { rng.gen_range(lo..=hi) })
                .collect();
            t.build_platform(speeds)
        }
    };

    // Granularity scaling: execution times only.
    if let Some(f) = granularity_scale_factor(&graph, &platform, cfg.granularity) {
        graph.scale_exec_times(f);
    }
    // Utilization normalization: scale all times (preserving the
    // granularity) so that the *binding* resource — aggregate compute or
    // aggregate port time, whichever is scarcer — sits at `U*`. At small
    // granularity the workload is communication-dominated and the port
    // budget binds; pinning only the compute load would make the sweep's
    // low-granularity points unschedulable for every heuristic.
    let period = cfg.period();
    let nrep = cfg.epsilon as f64 + 1.0;
    let demand_compute = nrep * graph.total_exec() * platform.mean_inv_speed();
    let demand_comm = nrep * graph.total_volume() * platform.mean_delay();
    let capacity = cfg.procs as f64 * period;
    let demand = demand_compute.max(demand_comm);
    if demand > 0.0 {
        let rho = cfg.utilization * capacity / demand;
        graph.scale_exec_times(rho);
        graph.scale_volumes(rho);
    }

    Instance {
        graph,
        platform,
        period,
        epsilon: cfg.epsilon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltf_schedule::granularity::granularity;

    #[test]
    fn calibration_hits_targets() {
        for &g in &[0.2, 1.0, 2.0] {
            for &eps in &[1u8, 3] {
                let cfg = PaperWorkload::paper(eps, g);
                let inst = gen_instance(&cfg, 42);
                // Granularity exact.
                let got = granularity(&inst.graph, &inst.platform);
                assert!((got - g).abs() < 1e-9, "granularity {got} vs {g}");
                // The binding resource (compute or port time) sits at U*.
                let nrep = eps as f64 + 1.0;
                let cap = 20.0 * inst.period;
                let u_comp = nrep * inst.graph.total_exec() * inst.platform.mean_inv_speed() / cap;
                let u_comm = nrep * inst.graph.total_volume() * inst.platform.mean_delay() / cap;
                let u = u_comp.max(u_comm);
                assert!((u - 0.25).abs() < 1e-9, "utilization {u}");
                assert!(u_comp <= 0.25 + 1e-9 && u_comm <= 0.25 + 1e-9);
                // Period per the paper.
                assert_eq!(inst.period, 10.0 * (eps as f64 + 1.0));
            }
        }
    }

    #[test]
    fn task_count_in_range() {
        let cfg = PaperWorkload::default();
        for seed in 0..10 {
            let inst = gen_instance(&cfg, seed);
            let v = inst.graph.num_tasks();
            assert!((50..=150).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn deterministic() {
        let cfg = PaperWorkload::paper(1, 0.8);
        let a = gen_instance(&cfg, 7);
        let b = gen_instance(&cfg, 7);
        assert_eq!(a.graph.num_tasks(), b.graph.num_tasks());
        assert_eq!(a.graph.total_exec(), b.graph.total_exec());
        assert_eq!(a.platform.min_speed(), b.platform.min_speed());
    }
}
