//! Command-line entry point regenerating the paper's evaluation.
//!
//! ```text
//! ltf-experiments <command> [--graphs N] [--seed S] [--out DIR]
//!                 [--crash-draws K] [--util U] [--threads T] [--quick]
//!                 [--json] [--algo NAME] [--eps E] [--period D]
//!                 [--instances N] [--checkpoint FILE]
//!
//! commands:
//!   fig1      motivating example (§1, Fig. 1): task/data/pipelined parallelism
//!   fig2      worked example (§4.3, Fig. 2): LTF vs R-LTF traces
//!   fig3      granularity sweep, ε = 1 (panels a, b, c + feasibility)
//!   fig4      granularity sweep, ε = 3 (panels a, b, c + feasibility)
//!   solve     one paper-workload instance through the Solver registry
//!   pareto    Pareto front over (latency, period, ε, processors)
//!   campaign-worker  one shard of a declarative campaign spec
//!   slo       stochastic failure campaign with SLO distribution report
//!   scaling   runtime scaling vs v, m, ε (Theorem 1)
//!   ablation  design ablations (Rule 1 / Rule 2 / one-to-one / chunk)
//!   all       fig1 fig2 fig3 fig4 (the default; scaling and ablation
//!             run long, so they stay opt-in)
//! ```

use ltf_baselines::full_solver;
use ltf_core::{AlgoConfig, Solution};
use ltf_experiments::ablation::{ablation, table as ablation_table, AblationConfig};
use ltf_experiments::ascii;
use ltf_experiments::figures::{feasibility, panel, sweep_checkpointed, Panel, SweepConfig};
use ltf_experiments::scaling::{scaling_sweep_checkpointed, table as scaling_table, ScalingConfig};
use ltf_experiments::stats::Figure;
use ltf_experiments::workload::{gen_instance_on, PaperWorkload};
use serde::Serialize;
use std::path::{Path, PathBuf};

#[derive(Debug)]
struct Opts {
    command: String,
    graphs: usize,
    seed: u64,
    out: PathBuf,
    crash_draws: usize,
    utilization: f64,
    threads: usize,
    quick: bool,
    json: bool,
    csv: bool,
    algo: String,
    eps: u8,
    period: Option<f64>,
    graph: String,
    max_eps: Option<u8>,
    max_latency: Option<f64>,
    max_procs: Option<usize>,
    instances: usize,
    checkpoint: Option<PathBuf>,
    spec: Option<PathBuf>,
    topology: Option<PathBuf>,
    shard: ltf_core::shard::Shard,
}

/// Pull the next argument as `flag`'s value and parse it, turning both
/// failure modes into one diagnostic shape: `flag: got 'X', expected
/// <what>` / `flag: missing value, expected <what>`.
fn take<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
    expected: &str,
) -> Result<T, String> {
    let raw = args
        .next()
        .ok_or_else(|| format!("{flag}: missing value, expected {expected}"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: got '{raw}', expected {expected}"))
}

/// Parse a full argument list. Pure so the error paths are unit-testable:
/// the binary's `parse_args` wrapper turns `Err` into a usage message and
/// `exit(2)` instead of the bare `expect("number")` panic (plus backtrace)
/// malformed values used to die with. `--help` parses to the `help`
/// pseudo-command.
fn parse_args_from(args: impl IntoIterator<Item = String>) -> Result<Opts, String> {
    let mut opts = Opts {
        command: String::new(),
        graphs: 60,
        seed: 0xB10B,
        out: PathBuf::from("results"),
        crash_draws: 10,
        utilization: 0.25,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        quick: false,
        json: false,
        csv: false,
        algo: "rltf".to_string(),
        eps: 1,
        period: None,
        graph: "fig1".to_string(),
        max_eps: None,
        max_latency: None,
        max_procs: None,
        instances: 1,
        checkpoint: None,
        spec: None,
        topology: None,
        shard: ltf_core::shard::Shard::solo(),
    };
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let args = &mut args;
        match a.as_str() {
            "--graphs" => opts.graphs = take(args, "--graphs", "a non-negative integer")?,
            "--seed" => opts.seed = take(args, "--seed", "an unsigned integer")?,
            "--out" => opts.out = PathBuf::from(take::<String>(args, "--out", "a path")?),
            "--crash-draws" => {
                opts.crash_draws = take(args, "--crash-draws", "a non-negative integer")?
            }
            "--util" => opts.utilization = take(args, "--util", "a number")?,
            "--threads" => opts.threads = take(args, "--threads", "a thread count")?,
            "--quick" => opts.quick = true,
            "--json" => opts.json = true,
            "--csv" => opts.csv = true,
            "--algo" => opts.algo = take(args, "--algo", "a heuristic name")?,
            "--eps" => opts.eps = take(args, "--eps", "an integer in 0..=255")?,
            "--period" => opts.period = Some(take(args, "--period", "a number")?),
            "--graph" => opts.graph = take(args, "--graph", "a graph name")?,
            "--max-eps" => opts.max_eps = Some(take(args, "--max-eps", "an integer in 0..=255")?),
            "--max-latency" => opts.max_latency = Some(take(args, "--max-latency", "a number")?),
            "--max-procs" => {
                opts.max_procs = Some(take(args, "--max-procs", "a positive integer")?)
            }
            "--instances" => {
                opts.instances = take(args, "--instances", "a positive integer")?;
                if opts.instances == 0 {
                    return Err("--instances: got '0', expected a positive integer".into());
                }
            }
            "--checkpoint" => {
                opts.checkpoint = Some(PathBuf::from(take::<String>(
                    args,
                    "--checkpoint",
                    "a journal path",
                )?))
            }
            "--spec" => {
                opts.spec = Some(PathBuf::from(take::<String>(
                    args,
                    "--spec",
                    "a campaign spec path",
                )?))
            }
            "--topology" => {
                opts.topology = Some(PathBuf::from(take::<String>(
                    args,
                    "--topology",
                    "a topology spec path",
                )?))
            }
            "--shard" => opts.shard = take(args, "--shard", "K/N (shard K of N)")?,
            "--help" | "-h" => {
                opts.command = "help".into();
                return Ok(opts);
            }
            cmd if !cmd.starts_with('-') && opts.command.is_empty() => {
                opts.command = cmd.to_string();
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.command.is_empty() {
        opts.command = "all".into();
    }
    Ok(opts)
}

fn parse_args() -> Opts {
    match parse_args_from(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn sweep_config(o: &Opts) -> SweepConfig {
    let mut cfg = if o.quick {
        SweepConfig::quick(o.graphs.min(8))
    } else {
        SweepConfig {
            graphs_per_point: o.graphs,
            ..Default::default()
        }
    };
    cfg.seed = o.seed;
    cfg.crash_draws = o.crash_draws;
    cfg.utilization = o.utilization;
    cfg.threads = o.threads;
    cfg
}

fn save_figure(dir: &Path, fig: &Figure) {
    std::fs::create_dir_all(dir).expect("create output dir");
    let csv_path = dir.join(format!("{}.csv", fig.id));
    std::fs::write(&csv_path, fig.to_csv()).expect("write csv");
    let json_path = dir.join(format!("{}.json", fig.id));
    std::fs::write(
        &json_path,
        serde_json::to_string_pretty(fig).expect("serialize"),
    )
    .expect("write json");
    println!("{}", ascii::render(fig, 64, 18));
    println!(
        "  wrote {} and {}\n",
        csv_path.display(),
        json_path.display()
    );
}

fn run_granularity_figure(o: &Opts, eps: u8, crashes: usize) {
    let cfg = sweep_config(o);
    let fignum = if eps == 1 { 3 } else { 4 };
    eprintln!(
        "running fig{fignum} sweep: ε={eps}, c={crashes}, {} graphs/point, {} points…",
        cfg.graphs_per_point,
        cfg.granularities.len()
    );
    let t0 = std::time::Instant::now();
    let data = match sweep_checkpointed(eps, crashes, &cfg, o.checkpoint.as_deref()) {
        Ok(data) => data,
        Err(e) => {
            eprintln!("checkpoint error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("sweep done in {:.1?}", t0.elapsed());
    for p in [Panel::Bounds, Panel::Crashes, Panel::Overhead] {
        save_figure(&o.out, &panel(&data, p));
    }
    save_figure(&o.out, &feasibility(&data));
}

fn run_fig1() {
    use ltf_baselines::{data_parallel, task_parallel};
    use ltf_core::Solver;
    use ltf_graph::generate::fig1_diamond;
    use ltf_platform::Platform;

    println!("=== Fig. 1: motivating example (4-task diamond, 4 processors) ===\n");
    let g = fig1_diamond();
    let p = Platform::fig1_platform();

    let tp = task_parallel(&g, &p, 1);
    println!(
        "(b) task parallelism : latency {:.1}, throughput 1/{:.1}",
        tp.latency,
        1.0 / tp.throughput
    );
    let dp = data_parallel(&g, &p, 1);
    println!(
        "(c) data parallelism : latency {:.1}, optimistic throughput 1/{:.1} (guaranteed 1/{:.1})",
        dp.latency,
        1.0 / dp.throughput_optimistic,
        1.0 / dp.throughput_guaranteed
    );
    // (d) pipelined execution at the paper's period 30.
    let solver = Solver::builtin(&g, &p);
    match solver.solve("rltf", &AlgoConfig::new(1, 30.0)) {
        Ok(sol) => println!(
            "(d) pipelined (R-LTF): latency {:.1}, throughput 1/{:.1}, S = {}",
            sol.metrics.latency_upper_bound, sol.metrics.period, sol.metrics.stages
        ),
        Err(d) => println!("(d) pipelined (R-LTF): infeasible ({d})"),
    }
    println!("\npaper's values: (b) L=39, T=1/39   (c) T=2/40=1/20   (d) L=90, T=1/30, S=2\n");
}

/// One `--json` row: the solve outcome plus the context that identifies
/// it (which instance, how many processors, feasible or not). Infeasible
/// outcomes are emitted with their diagnostics instead of being dropped.
#[derive(Serialize)]
struct OutcomeRecord {
    /// Instance label (graph name or workload seed).
    instance: String,
    /// Processor count of the platform.
    procs: usize,
    /// Name the heuristic was addressed by.
    heuristic: String,
    /// Whether a schedule satisfying the constraints was found.
    feasible: bool,
    /// Diagnostics text when infeasible.
    error: Option<String>,
    /// The solution report when feasible.
    solution: Option<Solution>,
}

impl OutcomeRecord {
    fn new(
        instance: &str,
        procs: usize,
        name: &str,
        outcome: &Result<Solution, ltf_core::Diagnostics>,
    ) -> Self {
        Self {
            instance: instance.to_string(),
            procs,
            heuristic: name.to_string(),
            feasible: outcome.is_ok(),
            error: outcome.as_ref().err().map(|d| d.to_string()),
            solution: outcome.as_ref().ok().cloned(),
        }
    }
}

fn run_fig2(json: bool) {
    use ltf_core::Solver;
    use ltf_graph::generate::{fig2_workflow, fig2_workflow_variant};
    use ltf_platform::Platform;

    let cfg = AlgoConfig::with_throughput(1, 0.05);
    let mut records: Vec<OutcomeRecord> = Vec::new();
    if !json {
        println!("=== Fig. 2: worked example (7 tasks, ε = 1, T = 0.05) ===\n");
    }
    for (name, g) in [
        ("reconstruction", fig2_workflow()),
        (
            "variant E(t2)=3 (see DESIGN.md §2.10)",
            fig2_workflow_variant(),
        ),
    ] {
        if !json {
            println!("--- graph: {name} ---");
        }
        for m in [8usize, 10] {
            let p = Platform::homogeneous(m, 1.0, 1.0);
            let solver = Solver::builtin(&g, &p);
            for (algo, label) in [("ltf", "LTF"), ("rltf", "R-LTF")] {
                let outcome = solver.solve(algo, &cfg);
                if json {
                    records.push(OutcomeRecord::new(name, m, algo, &outcome));
                    continue;
                }
                match outcome {
                    Ok(sol) => println!(
                        "  {label:<5} m={m:<2} S={} L={:<6.0} comms={:<2} procs={}",
                        sol.metrics.stages,
                        sol.metrics.latency_upper_bound,
                        sol.metrics.comm_count,
                        sol.metrics.procs_used
                    ),
                    Err(d) => println!("  {label:<5} m={m:<2} FAILS ({})", d.error),
                }
            }
        }
        if !json {
            println!();
        }
    }
    if json {
        println!("{}", serde_json::to_string_pretty(&records).unwrap());
    } else {
        println!("paper's values: R-LTF m=8: S=3 L=100; LTF m=8 fails; LTF m=10: S=4 L=140\n");
    }
}

/// Load and validate a `--topology` file: the `TopologySpec` wire form,
/// e.g. `{"shape": {"Chain": 0.5}, "mode": "Contended"}`.
fn load_topology(path: &Path, procs: usize) -> ltf_experiments::campaign::TopologySpec {
    let bail = |msg: String| -> ! {
        eprintln!("error: --topology {}: {msg}", path.display());
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| bail(e.to_string()));
    let spec: ltf_experiments::campaign::TopologySpec =
        serde_json::from_str(&text).unwrap_or_else(|e| bail(e.to_string()));
    if let Err(e) = spec.validate_for(procs) {
        bail(e.to_string());
    }
    spec
}

/// Run one paper-workload instance through the full Solver registry (the
/// paper's heuristics plus every baseline), by name.
fn run_solve(o: &Opts) {
    let wl = PaperWorkload {
        epsilon: o.eps,
        utilization: o.utilization,
        ..Default::default()
    };
    let topology = o.topology.as_ref().map(|p| load_topology(p, wl.procs));
    let inst = gen_instance_on(&wl, o.seed, topology.as_ref());
    let solver = full_solver(&inst.graph, &inst.platform);
    let period = o.period.unwrap_or(inst.period);
    let cfg = AlgoConfig::new(o.eps, period).seeded(o.seed);

    let outcomes: Vec<(String, Result<Solution, ltf_core::Diagnostics>)> = if o.algo == "all" {
        solver
            .names()
            .into_iter()
            .map(|n| (n.to_string(), solver.solve(n, &cfg)))
            .collect()
    } else {
        vec![(o.algo.clone(), solver.solve(&o.algo, &cfg))]
    };

    if o.json {
        let routed = if topology.is_some() { " routed" } else { "" };
        let instance = format!("paper-workload seed={:#x}{routed}", o.seed);
        let records: Vec<OutcomeRecord> = outcomes
            .iter()
            .map(|(n, r)| OutcomeRecord::new(&instance, inst.platform.num_procs(), n, r))
            .collect();
        println!("{}", serde_json::to_string_pretty(&records).unwrap());
    } else {
        let routed = match &topology {
            Some(t) => format!(" links={} ({:?})", inst.platform.num_links(), t.comm_mode()),
            None => String::new(),
        };
        println!(
            "instance: seed={:#x} v={} m={} ε={} Δ={:.3}{routed}  (registered: {})",
            o.seed,
            inst.graph.num_tasks(),
            inst.platform.num_procs(),
            o.eps,
            period,
            solver.names().join(", ")
        );
        for (name, outcome) in &outcomes {
            match outcome {
                Ok(sol) => println!("  {sol}"),
                Err(d) => println!("  {name}: INFEASIBLE — {d}"),
            }
        }
    }
    if outcomes.iter().all(|(_, r)| r.is_err()) {
        std::process::exit(1);
    }
}

/// Enumerate the Pareto front over (latency, period, ε, processors) on a
/// worked example or a paper-workload instance, re-validate every witness,
/// and stream the front as text, CSV or JSON lines.
fn run_pareto(o: &Opts) {
    use ltf_core::search::pareto::ParetoOptions;
    use ltf_experiments::pareto::{
        csv_line, enumerate, validate_front, ParetoInstance, CSV_HEADER,
    };

    let Some(which) = ParetoInstance::parse(&o.graph) else {
        eprintln!(
            "unknown --graph {:?} (choose fig1, fig2, fig2-variant, workload)\n",
            o.graph
        );
        std::process::exit(2);
    };
    let popts = ParetoOptions {
        max_epsilon: o.max_eps,
        max_latency: o.max_latency,
        max_procs: o.max_procs,
        threads: o.threads,
        ..Default::default()
    };
    // Workload-scale sweeps (--instances and/or --checkpoint) stream
    // compact rows per instance instead of buffering one front.
    if which == ParetoInstance::Workload && (o.instances > 1 || o.checkpoint.is_some()) {
        return run_pareto_sweep(o, popts);
    }
    if o.instances > 1 {
        eprintln!("--instances is only meaningful with --graph workload\n");
        std::process::exit(2);
    }
    let (g, p, instance) = which.build(o.seed, o.utilization);
    let front = match enumerate(&g, &p, &o.algo, &popts) {
        Ok(front) => front,
        Err(msg) => {
            eprintln!("{msg}\n");
            std::process::exit(2);
        }
    };
    // Acceptance gate: every emitted point carries a schedule that passes
    // the full structural validation. A violation here is a scheduler bug,
    // so fail loudly rather than emitting a bogus front.
    if let Err(msg) = validate_front(&g, &p, &front) {
        eprintln!("pareto front validation failed: {msg}");
        std::process::exit(1);
    }
    // An empty front means no (ε, prefix) cell was feasible — on the
    // known-feasible worked examples that is a scheduler regression, so
    // bail before emitting a plausible-looking empty artifact (this is
    // what makes the CI smoke step a real gate).
    if front.is_empty() {
        eprintln!("error: empty front (budgets too tight, or nothing schedulable)");
        std::process::exit(1);
    }
    if o.json {
        // JSON lines, one record per point, streamed in front order.
        for pt in &front {
            println!("{}", serde_json::to_string(pt).expect("serialize"));
        }
    } else if o.csv {
        println!("{CSV_HEADER}");
        for pt in &front {
            println!("{}", csv_line(&instance, pt));
        }
    } else {
        println!(
            "=== Pareto front over (L, Δ, ε, m): {instance}, algo {}, {} point(s) ===\n",
            o.algo,
            front.len()
        );
        for pt in &front {
            println!("  {pt}");
        }
        println!("\nall witness schedules validated; no point dominates another");
    }
}

/// Workload-scale Pareto sweep: `--instances N` random §5 instances, one
/// front per instance, rows streamed as they complete (text, CSV or JSON
/// lines) and journalled to `--checkpoint` for resume-on-restart.
fn run_pareto_sweep(o: &Opts, popts: ltf_core::search::pareto::ParetoOptions) {
    use ltf_experiments::pareto::{workload_sweep, WorkloadSweepConfig, SWEEP_CSV_HEADER};

    let cfg = WorkloadSweepConfig {
        instances: o.instances,
        seed: o.seed,
        utilization: o.utilization,
        algo: o.algo.clone(),
        opts: popts,
        threads: o.threads,
    };
    if o.csv {
        println!("{SWEEP_CSV_HEADER}");
    }
    let t0 = std::time::Instant::now();
    let emitted = workload_sweep(&cfg, o.checkpoint.as_deref(), |row| {
        if o.json {
            println!("{}", serde_json::to_string(row).expect("serialize"));
        } else if o.csv {
            println!("{}", row.csv_line());
        } else {
            println!(
                "seed={:#x} ε={} m={} Δ={:.3} L≤{:.3} S={} [{}]",
                row.seed,
                row.epsilon,
                row.procs,
                row.period,
                row.latency,
                row.stages,
                row.heuristic
            );
        }
    });
    match emitted {
        Ok(rows) => eprintln!(
            "pareto sweep: {} instance(s), {rows} front row(s), {:.1?}{}",
            o.instances,
            t0.elapsed(),
            o.checkpoint
                .as_deref()
                .map(|p| format!(", journal {}", p.display()))
                .unwrap_or_default()
        ),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}

/// Run one shard of a declarative campaign spec, streaming `ItemResult`
/// JSON lines to stdout for the `ltf-campaign` coordinator (or a human)
/// to merge. See `docs/campaign-spec.md`.
fn run_campaign_worker(o: &Opts) {
    let Some(spec) = &o.spec else {
        eprintln!("campaign-worker requires --spec FILE\n");
        std::process::exit(2);
    };
    let mut out = std::io::stdout().lock();
    match ltf_experiments::campaign::worker_main(
        spec,
        o.shard,
        o.threads,
        o.checkpoint.as_deref(),
        &mut out,
    ) {
        Ok(items) => eprintln!("campaign-worker: shard {} done, {items} item(s)", o.shard),
        Err(e) => {
            eprintln!("campaign-worker: {e}");
            std::process::exit(1);
        }
    }
}

/// `slo`: run a whole SLO campaign (a spec with a `failure` block) in
/// this process and render its report — JSON lines on stdout (CSV with
/// `--csv`), both files under `--out`. Distributed runs go through
/// `ltf-campaign` instead; this is the golden serial reference they are
/// byte-compared against. See `docs/slo-campaign.md`.
fn run_slo(o: &Opts) {
    let Some(spec_path) = &o.spec else {
        eprintln!("slo requires --spec FILE\n");
        std::process::exit(2);
    };
    let spec = match ltf_experiments::campaign::CampaignSpec::load(spec_path) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("slo: {e}");
            std::process::exit(2);
        }
    };
    if spec.failure.is_none() {
        eprintln!("slo: spec {} has no \"failure\" block", spec_path.display());
        std::process::exit(2);
    }
    let report = match ltf_experiments::campaign::run_slo_serial(
        &spec,
        o.threads,
        o.checkpoint.as_deref(),
    ) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("slo: {e}");
            std::process::exit(1);
        }
    };
    let json = report.json_lines();
    let csv = report.csv_lines();
    for line in if o.csv { &csv } else { &json } {
        println!("{line}");
    }
    std::fs::create_dir_all(&o.out).expect("create output dir");
    let json_path = o.out.join("slo.jsonl");
    let csv_path = o.out.join("slo.csv");
    std::fs::write(&json_path, json.join("\n") + "\n").expect("write slo.jsonl");
    std::fs::write(&csv_path, csv.join("\n") + "\n").expect("write slo.csv");
    eprintln!(
        "slo: {} cell(s); wrote {} and {}",
        report.rows.len(),
        json_path.display(),
        csv_path.display()
    );
}

fn print_usage() {
    eprintln!(
        "usage: ltf-experiments [COMMAND] [OPTIONS]\n\
         \n\
         commands:\n\
         \x20 fig1       motivating example (4-task diamond)\n\
         \x20 fig2       worked example (ε = 1, T = 0.05)\n\
         \x20 fig3       granularity sweep, ε = 1, c = 1\n\
         \x20 fig4       granularity sweep, ε = 3, c = 2\n\
         \x20 solve      one paper-workload instance through the Solver registry\n\
         \x20 pareto     Pareto front over (latency, period, ε, processors)\n\
         \x20 campaign-worker  run one shard of a campaign spec (--spec,\n\
         \x20            --shard K/N, --checkpoint; JSON lines on stdout;\n\
         \x20            specs with a \"failure\" block run the SLO pipeline)\n\
         \x20 slo        run an SLO campaign serially (--spec with a\n\
         \x20            \"failure\" block; report on stdout + --out files)\n\
         \x20 scaling    runtime scaling over (v, m, ε)\n\
         \x20 ablation   R-LTF rule ablations\n\
         \x20 all        fig1 fig2 fig3 fig4 (default)\n\
         \n\
         options:\n\
         \x20 --graphs N       graphs per sweep point (default 60)\n\
         \x20 --seed N         base RNG seed\n\
         \x20 --out DIR        output directory (default results/)\n\
         \x20 --crash-draws N  sampled crash sets per instance (default 10)\n\
         \x20 --util X         target platform utilization (default 0.25)\n\
         \x20 --threads N      worker threads (default: all cores)\n\
         \x20 --quick          reduced sizes for smoke runs\n\
         \x20 --json           solve/fig2: emit Solution reports as JSON;\n\
         \x20                  pareto: stream the front as JSON lines\n\
         \x20 --csv            pareto: stream the front as CSV rows\n\
         \x20 --algo NAME      solve/pareto: heuristic name or 'all' (default rltf);\n\
         \x20                  names: ltf rltf fault-free heft etf\n\
         \x20                  task-parallel data-parallel throughput-first\n\
         \x20 --eps E          solve: fault-tolerance degree ε (default 1)\n\
         \x20 --period D       solve: period Δ (default: the workload's)\n\
         \x20 --graph G        pareto: fig1 (default), fig2, fig2-variant,\n\
         \x20                  or workload (uses --seed/--util)\n\
         \x20 --max-eps E      pareto: cap the swept ε\n\
         \x20 --max-latency L  pareto: latency budget on every point\n\
         \x20 --max-procs M    pareto: processor budget (prefix sweep cap)\n\
         \x20 --instances N    pareto --graph workload: enumerate fronts on N\n\
         \x20                  random instances, streaming compact rows\n\
         \x20 --checkpoint F   journal completed work items to F (JSON lines)\n\
         \x20                  and resume from it on restart; honoured by\n\
         \x20                  pareto --graph workload, fig3/fig4, scaling\n\
         \x20                  and campaign-worker\n\
         \x20 --spec F         campaign-worker: the campaign spec file\n\
         \x20 --topology F     solve: route the generated platform through a\n\
         \x20                  topology spec file, e.g. {{\"shape\":{{\"Chain\":0.5}}}}\n\
         \x20                  (shapes: Chain, Star, Links; mode: Contended|Uniform)\n\
         \x20 --shard K/N      campaign-worker: run shard K of N (default 0/1)\n\
         \x20 --help, -h       this message"
    );
}

fn main() {
    let o = parse_args();
    match o.command.as_str() {
        "help" => {
            print_usage();
            std::process::exit(0);
        }
        "fig1" => run_fig1(),
        "fig2" => run_fig2(o.json),
        "fig3" => run_granularity_figure(&o, 1, 1),
        "fig4" => run_granularity_figure(&o, 3, 2),
        "solve" => run_solve(&o),
        "pareto" => run_pareto(&o),
        "campaign-worker" => run_campaign_worker(&o),
        "slo" => run_slo(&o),
        "scaling" => {
            let mut cfg = ScalingConfig {
                seed: o.seed,
                threads: o.threads,
                ..Default::default()
            };
            if o.quick {
                cfg.task_counts = vec![25, 50];
                cfg.proc_counts = vec![10];
                cfg.epsilons = vec![0, 1];
                cfg.reps = 2;
            }
            let pts = match scaling_sweep_checkpointed(&cfg, o.checkpoint.as_deref()) {
                Ok(pts) => pts,
                Err(e) => {
                    eprintln!("checkpoint error: {e}");
                    std::process::exit(1);
                }
            };
            println!("{}", scaling_table(&pts));
            std::fs::create_dir_all(&o.out).expect("create output dir");
            let path = o.out.join("scaling.json");
            std::fs::write(&path, serde_json::to_string_pretty(&pts).unwrap()).unwrap();
            println!("wrote {}", path.display());
        }
        "ablation" => {
            for eps in [1u8, 3] {
                let cfg = AblationConfig {
                    epsilon: eps,
                    instances: if o.quick { 6 } else { 30 },
                    seed: o.seed,
                    threads: o.threads,
                    ..Default::default()
                };
                let recs = ablation(&cfg);
                println!("=== ablation, ε = {eps} ===\n{}", ablation_table(&recs));
                std::fs::create_dir_all(&o.out).expect("create output dir");
                let path = o.out.join(format!("ablation_eps{eps}.json"));
                std::fs::write(&path, serde_json::to_string_pretty(&recs).unwrap()).unwrap();
                println!("wrote {}\n", path.display());
            }
        }
        "all" => {
            run_fig1();
            run_fig2(o.json);
            run_granularity_figure(&o, 1, 1);
            run_granularity_figure(&o, 3, 2);
        }
        other => {
            eprintln!("unknown command: {other}\n");
            print_usage();
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        parse_args_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_basic_flags() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.command, "all");
        assert_eq!(o.graphs, 60);
        assert_eq!(o.instances, 1);
        assert!(o.checkpoint.is_none());
        let o = parse(&[
            "pareto",
            "--graph",
            "workload",
            "--instances",
            "1000",
            "--checkpoint",
            "j.jsonl",
            "--threads",
            "8",
        ])
        .unwrap();
        assert_eq!(o.command, "pareto");
        assert_eq!(o.instances, 1000);
        assert_eq!(o.checkpoint.as_deref(), Some(Path::new("j.jsonl")));
        assert_eq!(o.threads, 8);
    }

    #[test]
    fn malformed_values_name_flag_value_and_expectation() {
        // Regression: these used to die as `expect("number")` panics with
        // a backtrace instead of a diagnostic.
        let err = parse(&["--graphs", "abc"]).unwrap_err();
        assert_eq!(err, "--graphs: got 'abc', expected a non-negative integer");
        let err = parse(&["--eps", "300"]).unwrap_err();
        assert_eq!(err, "--eps: got '300', expected an integer in 0..=255");
        let err = parse(&["--util", "fast"]).unwrap_err();
        assert_eq!(err, "--util: got 'fast', expected a number");
        let err = parse(&["--max-latency", "1e"]).unwrap_err();
        assert!(err.starts_with("--max-latency: got '1e'"), "{err}");
    }

    #[test]
    fn missing_values_are_reported() {
        let err = parse(&["--seed"]).unwrap_err();
        assert_eq!(err, "--seed: missing value, expected an unsigned integer");
        let err = parse(&["fig3", "--checkpoint"]).unwrap_err();
        assert_eq!(err, "--checkpoint: missing value, expected a journal path");
    }

    #[test]
    fn zero_instances_and_unknown_flags_rejected() {
        let err = parse(&["--instances", "0"]).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
        let err = parse(&["--frobnicate"]).unwrap_err();
        assert_eq!(err, "unknown argument: --frobnicate");
        let err = parse(&["fig1", "fig2"]).unwrap_err();
        assert_eq!(err, "unknown argument: fig2");
    }

    #[test]
    fn help_wins_and_negative_numbers_parse() {
        assert_eq!(parse(&["--help"]).unwrap().command, "help");
        assert_eq!(parse(&["fig3", "-h"]).unwrap().command, "help");
        // A negative value is a parse error for unsigned flags, not an
        // "unknown argument" (it is consumed as the flag's value).
        let err = parse(&["--graphs", "-3"]).unwrap_err();
        assert_eq!(err, "--graphs: got '-3', expected a non-negative integer");
    }
}
