//! Command-line entry point regenerating the paper's evaluation.
//!
//! ```text
//! ltf-experiments <command> [--graphs N] [--seed S] [--out DIR]
//!                 [--crash-draws K] [--util U] [--threads T] [--quick]
//!
//! commands:
//!   fig1      motivating example (§1, Fig. 1): task/data/pipelined parallelism
//!   fig2      worked example (§4.3, Fig. 2): LTF vs R-LTF traces
//!   fig3      granularity sweep, ε = 1 (panels a, b, c + feasibility)
//!   fig4      granularity sweep, ε = 3 (panels a, b, c + feasibility)
//!   scaling   runtime scaling vs v, m, ε (Theorem 1)
//!   ablation  design ablations (Rule 1 / Rule 2 / one-to-one / chunk)
//!   all       fig1 fig2 fig3 fig4 (the default; scaling and ablation
//!             run long, so they stay opt-in)
//! ```

use ltf_experiments::ablation::{ablation, table as ablation_table, AblationConfig};
use ltf_experiments::ascii;
use ltf_experiments::figures::{feasibility, panel, sweep, Panel, SweepConfig};
use ltf_experiments::scaling::{scaling_sweep, table as scaling_table, ScalingConfig};
use ltf_experiments::stats::Figure;
use std::path::{Path, PathBuf};

struct Opts {
    command: String,
    graphs: usize,
    seed: u64,
    out: PathBuf,
    crash_draws: usize,
    utilization: f64,
    threads: usize,
    quick: bool,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        command: String::new(),
        graphs: 60,
        seed: 0xB10B,
        out: PathBuf::from("results"),
        crash_draws: 10,
        utilization: 0.25,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match a.as_str() {
            "--graphs" => opts.graphs = next("--graphs").parse().expect("number"),
            "--seed" => opts.seed = next("--seed").parse().expect("number"),
            "--out" => opts.out = PathBuf::from(next("--out")),
            "--crash-draws" => opts.crash_draws = next("--crash-draws").parse().expect("number"),
            "--util" => opts.utilization = next("--util").parse().expect("number"),
            "--threads" => opts.threads = next("--threads").parse().expect("number"),
            "--quick" => opts.quick = true,
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            cmd if !cmd.starts_with('-') && opts.command.is_empty() => {
                opts.command = cmd.to_string();
            }
            other => {
                eprintln!("unknown argument: {other}\n");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    if opts.command.is_empty() {
        opts.command = "all".into();
    }
    opts
}

fn sweep_config(o: &Opts) -> SweepConfig {
    let mut cfg = if o.quick {
        SweepConfig::quick(o.graphs.min(8))
    } else {
        SweepConfig {
            graphs_per_point: o.graphs,
            ..Default::default()
        }
    };
    cfg.seed = o.seed;
    cfg.crash_draws = o.crash_draws;
    cfg.utilization = o.utilization;
    cfg.threads = o.threads;
    cfg
}

fn save_figure(dir: &Path, fig: &Figure) {
    std::fs::create_dir_all(dir).expect("create output dir");
    let csv_path = dir.join(format!("{}.csv", fig.id));
    std::fs::write(&csv_path, fig.to_csv()).expect("write csv");
    let json_path = dir.join(format!("{}.json", fig.id));
    std::fs::write(
        &json_path,
        serde_json::to_string_pretty(fig).expect("serialize"),
    )
    .expect("write json");
    println!("{}", ascii::render(fig, 64, 18));
    println!(
        "  wrote {} and {}\n",
        csv_path.display(),
        json_path.display()
    );
}

fn run_granularity_figure(o: &Opts, eps: u8, crashes: usize) {
    let cfg = sweep_config(o);
    let fignum = if eps == 1 { 3 } else { 4 };
    eprintln!(
        "running fig{fignum} sweep: ε={eps}, c={crashes}, {} graphs/point, {} points…",
        cfg.graphs_per_point,
        cfg.granularities.len()
    );
    let t0 = std::time::Instant::now();
    let data = sweep(eps, crashes, &cfg);
    eprintln!("sweep done in {:.1?}", t0.elapsed());
    for p in [Panel::Bounds, Panel::Crashes, Panel::Overhead] {
        save_figure(&o.out, &panel(&data, p));
    }
    save_figure(&o.out, &feasibility(&data));
}

fn run_fig1() {
    use ltf_baselines::{data_parallel, task_parallel};
    use ltf_core::{rltf_schedule, AlgoConfig};
    use ltf_graph::generate::fig1_diamond;
    use ltf_platform::Platform;

    println!("=== Fig. 1: motivating example (4-task diamond, 4 processors) ===\n");
    let g = fig1_diamond();
    let p = Platform::fig1_platform();

    let tp = task_parallel(&g, &p, 1);
    println!(
        "(b) task parallelism : latency {:.1}, throughput 1/{:.1}",
        tp.latency,
        1.0 / tp.throughput
    );
    let dp = data_parallel(&g, &p, 1);
    println!(
        "(c) data parallelism : latency {:.1}, optimistic throughput 1/{:.1} (guaranteed 1/{:.1})",
        dp.latency,
        1.0 / dp.throughput_optimistic,
        1.0 / dp.throughput_guaranteed
    );
    // (d) pipelined execution at the paper's period 30.
    let cfg = AlgoConfig::new(1, 30.0);
    match rltf_schedule(&g, &p, &cfg) {
        Ok(s) => println!(
            "(d) pipelined (R-LTF): latency {:.1}, throughput 1/{:.1}, S = {}",
            s.latency_upper_bound(),
            s.period(),
            s.num_stages()
        ),
        Err(e) => println!("(d) pipelined (R-LTF): infeasible ({e})"),
    }
    println!("\npaper's values: (b) L=39, T=1/39   (c) T=2/40=1/20   (d) L=90, T=1/30, S=2\n");
}

fn run_fig2() {
    use ltf_core::{ltf_schedule, rltf_schedule, AlgoConfig};
    use ltf_graph::generate::{fig2_workflow, fig2_workflow_variant};
    use ltf_platform::Platform;

    println!("=== Fig. 2: worked example (7 tasks, ε = 1, T = 0.05) ===\n");
    let cfg = AlgoConfig::with_throughput(1, 0.05);
    for (name, g) in [
        ("reconstruction", fig2_workflow()),
        (
            "variant E(t2)=3 (see DESIGN.md §2.10)",
            fig2_workflow_variant(),
        ),
    ] {
        println!("--- graph: {name} ---");
        for m in [8usize, 10] {
            let p = Platform::homogeneous(m, 1.0, 1.0);
            for (algo, res) in [
                ("LTF  ", ltf_schedule(&g, &p, &cfg)),
                ("R-LTF", rltf_schedule(&g, &p, &cfg)),
            ] {
                match res {
                    Ok(s) => println!(
                        "  {algo} m={m:<2} S={} L={:<6.0} comms={:<2} procs={}",
                        s.num_stages(),
                        s.latency_upper_bound(),
                        s.comm_count(),
                        s.procs_used()
                    ),
                    Err(e) => println!("  {algo} m={m:<2} FAILS ({e})"),
                }
            }
        }
        println!();
    }
    println!("paper's values: R-LTF m=8: S=3 L=100; LTF m=8 fails; LTF m=10: S=4 L=140\n");
}

fn print_usage() {
    eprintln!(
        "usage: ltf-experiments [COMMAND] [OPTIONS]\n\
         \n\
         commands:\n\
         \x20 fig1       motivating example (4-task diamond)\n\
         \x20 fig2       worked example (ε = 1, T = 0.05)\n\
         \x20 fig3       granularity sweep, ε = 1, c = 1\n\
         \x20 fig4       granularity sweep, ε = 3, c = 2\n\
         \x20 scaling    runtime scaling over (v, m, ε)\n\
         \x20 ablation   R-LTF rule ablations\n\
         \x20 all        fig1 fig2 fig3 fig4 (default)\n\
         \n\
         options:\n\
         \x20 --graphs N       graphs per sweep point (default 60)\n\
         \x20 --seed N         base RNG seed\n\
         \x20 --out DIR        output directory (default results/)\n\
         \x20 --crash-draws N  sampled crash sets per instance (default 10)\n\
         \x20 --util X         target platform utilization (default 0.25)\n\
         \x20 --threads N      worker threads (default: all cores)\n\
         \x20 --quick          reduced sizes for smoke runs\n\
         \x20 --help, -h       this message"
    );
}

fn main() {
    let o = parse_args();
    match o.command.as_str() {
        "fig1" => run_fig1(),
        "fig2" => run_fig2(),
        "fig3" => run_granularity_figure(&o, 1, 1),
        "fig4" => run_granularity_figure(&o, 3, 2),
        "scaling" => {
            let mut cfg = ScalingConfig {
                seed: o.seed,
                threads: o.threads,
                ..Default::default()
            };
            if o.quick {
                cfg.task_counts = vec![25, 50];
                cfg.proc_counts = vec![10];
                cfg.epsilons = vec![0, 1];
                cfg.reps = 2;
            }
            let pts = scaling_sweep(&cfg);
            println!("{}", scaling_table(&pts));
            std::fs::create_dir_all(&o.out).expect("create output dir");
            let path = o.out.join("scaling.json");
            std::fs::write(&path, serde_json::to_string_pretty(&pts).unwrap()).unwrap();
            println!("wrote {}", path.display());
        }
        "ablation" => {
            for eps in [1u8, 3] {
                let cfg = AblationConfig {
                    epsilon: eps,
                    instances: if o.quick { 6 } else { 30 },
                    seed: o.seed,
                    threads: o.threads,
                    ..Default::default()
                };
                let recs = ablation(&cfg);
                println!("=== ablation, ε = {eps} ===\n{}", ablation_table(&recs));
                std::fs::create_dir_all(&o.out).expect("create output dir");
                let path = o.out.join(format!("ablation_eps{eps}.json"));
                std::fs::write(&path, serde_json::to_string_pretty(&recs).unwrap()).unwrap();
                println!("wrote {}\n", path.display());
            }
        }
        "all" => {
            run_fig1();
            run_fig2();
            run_granularity_figure(&o, 1, 1);
            run_granularity_figure(&o, 3, 2);
        }
        other => {
            eprintln!("unknown command: {other}\n");
            print_usage();
            std::process::exit(2);
        }
    }
}
