//! Algorithm-runtime scaling experiments (Theorem 1).
//!
//! The paper bounds LTF's complexity by
//! `O(e·m·(ε+1)²·log(ε+1) + v·log ω)`. These sweeps measure wall-clock
//! scheduling time against each driver (task count `v` with `e ≈ 2v`,
//! processor count `m`, replication degree `ε`) so the empirical growth
//! can be compared with the bound.

use crate::checkpoint::Checkpoint;
use crate::runner::parallel_map;
use crate::workload::{gen_instance, PaperWorkload};
use ltf_core::{AlgoConfig, AlgoKind, PreparedInstance};
use serde::Serialize;
use std::collections::HashMap;
use std::path::Path;
use std::time::Instant;

/// One aggregated scaling measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// Task count of the instances.
    pub v: usize,
    /// Processor count.
    pub m: usize,
    /// Fault-tolerance degree.
    pub epsilon: u8,
    /// Algorithm name.
    pub algo: String,
    /// Mean scheduling time (µs) over the repetitions.
    pub micros: f64,
    /// How many runs produced a feasible schedule.
    pub feasible: usize,
    /// Repetitions.
    pub reps: usize,
}

impl ScalingPoint {
    /// Decode a point replayed from a checkpoint journal. `None` when a
    /// field is missing or has the wrong shape.
    pub fn from_value(v: &serde::Value) -> Option<Self> {
        use crate::checkpoint::{as_f64, as_str, as_u64, field};
        Some(Self {
            v: as_u64(field(v, "v")?)? as usize,
            m: as_u64(field(v, "m")?)? as usize,
            epsilon: as_u64(field(v, "epsilon")?)? as u8,
            algo: as_str(field(v, "algo")?)?.to_string(),
            micros: as_f64(field(v, "micros")?)?,
            feasible: as_u64(field(v, "feasible")?)? as usize,
            reps: as_u64(field(v, "reps")?)? as usize,
        })
    }
}

/// Configuration for [`scaling_sweep`].
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Task counts to probe (processor count and ε fixed at defaults).
    pub task_counts: Vec<usize>,
    /// Processor counts to probe.
    pub proc_counts: Vec<usize>,
    /// Replication degrees to probe.
    pub epsilons: Vec<u8>,
    /// Instances per point.
    pub reps: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        Self {
            task_counts: vec![25, 50, 100, 200, 400],
            proc_counts: vec![10, 20, 40],
            epsilons: vec![0, 1, 2, 3],
            reps: 5,
            seed: 0x5CA1E,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

fn measure_point(
    v: usize,
    m: usize,
    epsilon: u8,
    kind: AlgoKind,
    cfg: &ScalingConfig,
) -> ScalingPoint {
    let wl = PaperWorkload {
        tasks: (v, v),
        procs: m,
        epsilon,
        granularity: 1.0,
        // Low utilization keeps large-ε points schedulable so the timing
        // reflects a full run, not an early failure.
        utilization: 0.4,
        ..Default::default()
    };
    let seeds: Vec<u64> = (0..cfg.reps)
        .map(|k| {
            cfg.seed ^ ((v as u64) << 32) ^ ((m as u64) << 16) ^ ((epsilon as u64) << 8) ^ k as u64
        })
        .collect();
    let results = parallel_map(&seeds, cfg.threads, |s| {
        let inst = gen_instance(&wl, s);
        let acfg = AlgoConfig::new(epsilon, inst.period).seeded(s);
        // The prepared instance is lazy, so the timed region still covers
        // the level-cache/reversal derivations, as the bound requires.
        let prep = PreparedInstance::new(&inst.graph, &inst.platform);
        let t0 = Instant::now();
        let ok = kind.heuristic().schedule(&prep, &acfg).is_ok();
        (t0.elapsed().as_micros() as f64, ok)
    });
    let micros = results.iter().map(|(t, _)| *t).sum::<f64>() / results.len() as f64;
    let feasible = results.iter().filter(|(_, ok)| *ok).count();
    ScalingPoint {
        v,
        m,
        epsilon,
        algo: kind.to_string(),
        micros,
        feasible,
        reps: cfg.reps,
    }
}

/// Run the three scaling sweeps for both algorithms.
pub fn scaling_sweep(cfg: &ScalingConfig) -> Vec<ScalingPoint> {
    scaling_sweep_checkpointed(cfg, None).expect("no journal, no I/O to fail")
}

/// [`scaling_sweep`] with an optional `--checkpoint` journal: each
/// `(algo, v, m, ε)` point is journalled as soon as it is measured, and a
/// restart replays completed points instead of re-measuring them (the
/// reps *inside* a point still run on `cfg.threads` workers). Replayed
/// timings are reused verbatim — a resumed sweep reports the measurements
/// of the run that made them.
pub fn scaling_sweep_checkpointed(
    cfg: &ScalingConfig,
    journal: Option<&Path>,
) -> std::io::Result<Vec<ScalingPoint>> {
    // The key pins everything the point depends on (including the base
    // seed and the rep count): a journal shared across configurations
    // only ever replays records measured under identical parameters.
    let keyed = |kind: AlgoKind, v: usize, m: usize, eps: u8| {
        format!(
            "scaling:{kind}:v={v}:m={m}:eps={eps}:reps={}:seed={:#x}",
            cfg.reps, cfg.seed
        )
    };
    let mut combos: Vec<(AlgoKind, usize, usize, u8)> = Vec::new();
    for kind in [AlgoKind::Ltf, AlgoKind::Rltf] {
        for &v in &cfg.task_counts {
            combos.push((kind, v, 20, 1));
        }
        for &m in &cfg.proc_counts {
            combos.push((kind, 100, m, 1));
        }
        for &eps in &cfg.epsilons {
            combos.push((kind, 100, 20, eps));
        }
    }
    let expected: std::collections::HashSet<String> = combos
        .iter()
        .map(|&(kind, v, m, eps)| keyed(kind, v, m, eps))
        .collect();
    let mut replayed: HashMap<String, ScalingPoint> = HashMap::new();
    let mut ckpt = match journal {
        Some(path) => Some(Checkpoint::open(path, |key, value| {
            if !expected.contains(key) {
                return false; // another sweep/config's records share the journal
            }
            match ScalingPoint::from_value(value) {
                Some(pt) => {
                    replayed.insert(key.to_string(), pt);
                    true
                }
                None => {
                    eprintln!("warning: checkpoint: record {key} does not decode; re-measuring");
                    false
                }
            }
        })?),
        None => None,
    };
    let mut out = Vec::with_capacity(combos.len());
    for (kind, v, m, eps) in combos {
        let key = keyed(kind, v, m, eps);
        let pt = match replayed.remove(&key) {
            Some(pt) => pt,
            None => {
                let pt = measure_point(v, m, eps, kind, cfg);
                if let Some(c) = ckpt.as_mut() {
                    c.record(&key, &pt)?;
                }
                pt
            }
        };
        out.push(pt);
    }
    Ok(out)
}

/// Render scaling points as an aligned text table.
pub fn table(points: &[ScalingPoint]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "{:<8} {:>6} {:>4} {:>4} {:>12} {:>9}",
        "algo", "v", "m", "ε", "mean µs", "feasible"
    )
    .unwrap();
    for p in points {
        writeln!(
            s,
            "{:<8} {:>6} {:>4} {:>4} {:>12.1} {:>6}/{:<2}",
            p.algo, p.v, p.m, p.epsilon, p.micros, p.feasible, p.reps
        )
        .unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scaling_runs() {
        let cfg = ScalingConfig {
            task_counts: vec![20],
            proc_counts: vec![8],
            epsilons: vec![1],
            reps: 2,
            threads: 4,
            ..Default::default()
        };
        let pts = scaling_sweep(&cfg);
        // 2 algorithms × (1 + 1 + 1) sweeps.
        assert_eq!(pts.len(), 6);
        for p in &pts {
            assert!(p.micros >= 0.0);
            assert!(p.reps == 2);
        }
        let t = table(&pts);
        assert!(t.contains("LTF"));
    }
}
