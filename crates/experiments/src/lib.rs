//! Experiment harness reproducing the paper's evaluation (§5).
//!
//! * [`workload`] — the calibrated random workload: 50–150-task layered
//!   DAGs, 20 heterogeneous processors, granularity sweep, throughput
//!   `1/(10(ε+1))`.
//! * [`runner`] — per-instance measurement (LTF, R-LTF, fault-free
//!   reference; latency bounds, effective latencies, crash draws) on the
//!   shared [`ltf_core::par`] worker pool.
//! * [`figures`] — the sweeps behind Figs. 3 and 4 and their three panels
//!   (latency bounds / latency with crashes / overhead).
//! * [`scaling`] — runtime scaling against `v`, `m`, `ε` (Theorem 1).
//! * [`ablation`] — design ablations (Rule 1, Rule 2, one-to-one, chunk
//!   size).
//! * [`pareto`] — Pareto-front enumeration over (latency, period, ε,
//!   processors) on the worked examples or the §5 workload, including the
//!   thousands-of-instances [`pareto::workload_sweep`].
//! * [`checkpoint`] — streamed JSON-lines journals with kill-safe
//!   resume-on-restart for the long-running sweeps.
//! * [`campaign`] — declarative JSON campaign specs expanded into an
//!   experiment matrix, run as round-robin shards over the checkpoint
//!   journals, and merged back byte-identical to a serial run (the
//!   `ltf-campaign` coordinator drives multiple worker processes through
//!   this module).
//! * [`stats`], [`ascii`] — aggregation, CSV and terminal charts.
//!
//! The `ltf-experiments` binary exposes all of this on the command line;
//! `cargo run -p ltf-experiments --release -- all` regenerates every
//! figure of the paper, and `ltf-experiments campaign-worker` runs one
//! shard of a campaign spec (see `docs/campaign-spec.md`).

pub mod ablation;
pub mod ascii;
pub mod campaign;
pub mod checkpoint;
pub mod figures;
pub mod pareto;
pub mod runner;
pub mod scaling;
pub mod stats;
pub mod workload;

pub use crate::checkpoint::Checkpoint;
pub use crate::figures::{panel, sweep, sweep_checkpointed, Panel, SweepConfig, SweepData};
pub use crate::runner::{measure_instance, parallel_map, RunRecord};
pub use crate::stats::{Figure, Series, SeriesPoint};
pub use crate::workload::{gen_instance, gen_instance_on, Instance, PaperWorkload};
