//! Streamed, resumable JSON-lines journals for long-running sweeps.
//!
//! Every long-running `ltf-experiments` subcommand can journal its
//! per-work-item results to a `--checkpoint FILE` as it goes: one JSON
//! object per line, `{"key": "<work item>", "record": <payload>}`,
//! flushed after every write. Restarting the same command with the same
//! file **replays** the completed records (the caller re-aggregates or
//! re-emits them) and recomputes only the missing work items, so a killed
//! thousand-instance sweep loses at most one window of work instead of
//! everything.
//!
//! Robustness against kills: a process killed mid-write leaves a
//! truncated final line. [`Checkpoint::open`] detects it, warns, truncates
//! the file back to the last complete record and resumes from there — the
//! journal is always a clean prefix of the uninterrupted run.
//!
//! Memory stays bounded by construction: replay is streamed line by line
//! through a caller callback (nothing is retained here), and
//! [`resume_chunks`] computes pending items in fixed-size windows,
//! recording and handing each window to the caller before the next one
//! starts.

use ltf_core::par::parallel_map;
use serde::{Serialize, Value};
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Seek, Write};
use std::path::{Path, PathBuf};

/// An append-only JSON-lines journal of completed work items.
///
/// ```
/// use ltf_experiments::checkpoint::{as_u64, Checkpoint};
///
/// let path = std::env::temp_dir().join(format!("ckpt-doc-{}.jsonl", std::process::id()));
/// let _ = std::fs::remove_file(&path);
///
/// // First run: journal two completed items, then stop (crash, kill…).
/// let mut ckpt = Checkpoint::open(&path, |_, _| unreachable!("fresh journal")).unwrap();
/// ckpt.record("item=0", &7u64).unwrap();
/// ckpt.record("item=1", &8u64).unwrap();
/// drop(ckpt);
///
/// // Resume: the completed records replay instead of recomputing.
/// let mut replayed = Vec::new();
/// let ckpt = Checkpoint::open(&path, |key, record| {
///     replayed.push((key.to_string(), as_u64(record).unwrap()));
///     true // accepted → the key joins the done-set
/// }).unwrap();
/// assert_eq!(replayed, [("item=0".to_string(), 7), ("item=1".to_string(), 8)]);
/// assert!(ckpt.contains("item=0"));
/// assert_eq!(ckpt.len(), 2);
/// # std::fs::remove_file(ckpt.path()).unwrap();
/// ```
pub struct Checkpoint {
    path: PathBuf,
    out: BufWriter<File>,
    done: HashSet<String>,
}

impl Checkpoint {
    /// Open (creating if absent) the journal at `path`, streaming every
    /// complete record already in it through `replay(key, record)`.
    ///
    /// `replay` returns whether it **accepted** the record. Only accepted
    /// keys enter the done-set (and are skipped by [`resume_chunks`]):
    /// a record the caller cannot decode — schema drift, or a record
    /// belonging to a different run configuration sharing the journal —
    /// stays pending and is simply recomputed (and re-appended; on later
    /// opens the first *accepted* occurrence of a key wins and duplicates
    /// are not replayed again).
    ///
    /// An **unterminated** trailing line — the signature of a kill
    /// between a record reaching the OS and its newline (or mid-record) —
    /// is dropped with a warning and truncated away, even if its bytes
    /// happen to parse: the writer always terminates lines, so a missing
    /// newline proves the write was torn. A malformed *terminated* line
    /// is a hard error (the journal is corrupt, not merely interrupted).
    pub fn open(path: &Path, mut replay: impl FnMut(&str, &Value) -> bool) -> io::Result<Self> {
        let mut done = HashSet::new();
        let mut keep: u64 = 0;
        if path.exists() {
            let mut reader = BufReader::new(File::open(path)?);
            let mut buf: Vec<u8> = Vec::new();
            loop {
                buf.clear();
                let n = reader.read_until(b'\n', &mut buf)? as u64;
                if n == 0 {
                    break;
                }
                let terminated = buf.last() == Some(&b'\n');
                if !terminated {
                    // read_until only stops short of '\n' at EOF, so this
                    // is the final line; `keep` already excludes it.
                    eprintln!(
                        "warning: checkpoint {}: dropping torn trailing record \
                         ({n} bytes, no newline) — resuming from the last complete one",
                        path.display()
                    );
                    break;
                }
                let parsed = std::str::from_utf8(&buf[..buf.len() - 1])
                    .ok()
                    .and_then(parse_record);
                let Some((key, record)) = parsed else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "checkpoint {}: malformed record at byte {keep}",
                            path.display()
                        ),
                    ));
                };
                if !done.contains(&key) && replay(&key, &record) {
                    done.insert(key);
                }
                keep += n;
            }
        }
        // Neither truncate (we are resuming) nor append (we may need
        // set_len to drop a torn record): plain write + explicit seek.
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        file.set_len(keep)?;
        file.seek(io::SeekFrom::End(0))?;
        Ok(Self {
            path: path.to_path_buf(),
            out: BufWriter::new(file),
            done,
        })
    }

    /// Whether `key` was already completed by a previous (or this) run.
    pub fn contains(&self, key: &str) -> bool {
        self.done.contains(key)
    }

    /// Number of completed work items.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// True when nothing has been journalled yet.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one completed work item and flush it to the OS, so a kill
    /// directly after costs nothing.
    pub fn record<T: Serialize + ?Sized>(&mut self, key: &str, payload: &T) -> io::Result<()> {
        let line = serde_json::to_string(&Record { key, payload })
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        self.done.insert(key.to_string());
        Ok(())
    }
}

struct Record<'a, T: ?Sized> {
    key: &'a str,
    payload: &'a T,
}

impl<T: Serialize + ?Sized> Serialize for Record<'_, T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("key".to_string(), Value::Str(self.key.to_string())),
            ("record".to_string(), self.payload.to_value()),
        ])
    }
}

/// Parse one journal line into `(key, record)`.
fn parse_record(line: &str) -> Option<(String, Value)> {
    let v = serde_json::from_str(line).ok()?;
    let key = field(&v, "key").and_then(as_str)?.to_string();
    let record = field(&v, "record")?.clone();
    Some((key, record))
}

/// Drive `compute` over every item whose `key` is not yet journalled, in
/// windows of `window` items on `threads` workers. Results are recorded
/// (journal + done-set) and handed to `consume` **in item order** within
/// each window, so the journal — and any output derived from it — is a
/// deterministic prefix of the uninterrupted run no matter where a kill
/// lands. Items already completed are skipped entirely; their records
/// were replayed when the checkpoint was opened. With `ckpt = None` this
/// degrades to a windowed parallel map (same output, no journal).
pub fn resume_chunks<I, T, K, C, U>(
    items: &[I],
    threads: usize,
    window: usize,
    ckpt: &mut Option<Checkpoint>,
    key: K,
    compute: C,
    mut consume: U,
) -> io::Result<()>
where
    I: Sync,
    T: Send + Serialize,
    K: Fn(&I) -> String,
    C: Fn(&I) -> T + Sync,
    U: FnMut(&I, T),
{
    let pending: Vec<&I> = items
        .iter()
        .filter(|i| !ckpt.as_ref().is_some_and(|c| c.contains(&key(i))))
        .collect();
    for chunk in pending.chunks(window.max(1)) {
        let outs = parallel_map(chunk, threads, |i| compute(i));
        for (i, t) in chunk.iter().zip(outs) {
            if let Some(c) = ckpt.as_mut() {
                c.record(&key(i), &t)?;
            }
            consume(i, t);
        }
    }
    Ok(())
}

// ---- Value-access helpers for replay decoding -------------------------
//
// The vendored serde is serialize-first: replay hands back [`Value`]
// trees, and each record type decodes itself with these accessors.

/// Look up a map field by name.
pub fn field<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

/// Numeric coercion: any of the three number variants as `f64`.
pub fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

/// Unsigned coercion (rejects negatives and non-integers).
pub fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(u) => Some(*u),
        Value::Int(i) => (*i >= 0).then_some(*i as u64),
        _ => None,
    }
}

/// String access.
pub fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Bool access.
pub fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ltf-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[derive(serde::Serialize)]
    struct Row {
        seed: u64,
        val: f64,
    }

    #[test]
    fn journal_roundtrip_and_resume() {
        let path = tmp("roundtrip");
        {
            let mut ck = Checkpoint::open(&path, |_, _| panic!("fresh file")).unwrap();
            ck.record("a", &Row { seed: 1, val: 0.5 }).unwrap();
            ck.record("b", &Row { seed: 2, val: 1.5 }).unwrap();
            assert_eq!(ck.len(), 2);
        }
        let mut seen = Vec::new();
        let ck = Checkpoint::open(&path, |k, v| {
            seen.push((
                k.to_string(),
                as_u64(field(v, "seed").unwrap()).unwrap(),
                as_f64(field(v, "val").unwrap()).unwrap(),
            ));
            true
        })
        .unwrap();
        assert_eq!(seen, vec![("a".into(), 1, 0.5), ("b".into(), 2, 1.5)]);
        assert!(ck.contains("a") && ck.contains("b") && !ck.contains("c"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped_and_overwritten() {
        let path = tmp("truncated");
        {
            let mut ck = Checkpoint::open(&path, |_, _| true).unwrap();
            ck.record("a", &Row { seed: 1, val: 0.5 }).unwrap();
            ck.record("b", &Row { seed: 2, val: 1.5 }).unwrap();
        }
        // Simulate a kill mid-write: chop the journal inside record "b".
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 9]).unwrap();
        let mut keys = Vec::new();
        {
            let mut ck = Checkpoint::open(&path, |k, _| {
                keys.push(k.to_string());
                true
            })
            .unwrap();
            assert_eq!(keys, vec!["a"]);
            assert!(!ck.contains("b"), "truncated record must not count");
            ck.record("b", &Row { seed: 2, val: 1.5 }).unwrap();
        }
        // The re-written journal must be fully parseable again.
        let mut replayed = Vec::new();
        Checkpoint::open(&path, |k, _| {
            replayed.push(k.to_string());
            true
        })
        .unwrap();
        assert_eq!(replayed, vec!["a", "b"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unterminated_tail_is_torn_even_if_it_parses() {
        // Regression: a kill between the record write and its newline
        // used to make `keep` count the missing '\n' — set_len then
        // *extended* the file with a NUL byte, corrupting the journal.
        // An unterminated line is torn by definition (the writer always
        // terminates), so it must be dropped and truncated away.
        let path = tmp("unterminated");
        {
            let mut ck = Checkpoint::open(&path, |_, _| true).unwrap();
            ck.record("a", &Row { seed: 1, val: 0.5 }).unwrap();
            ck.record("b", &Row { seed: 2, val: 1.5 }).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end_matches('\n')).unwrap(); // strip only the final '\n'
        let mut keys = Vec::new();
        {
            let mut ck = Checkpoint::open(&path, |k, _| {
                keys.push(k.to_string());
                true
            })
            .unwrap();
            assert_eq!(keys, vec!["a"], "parseable torn tail must not replay");
            assert!(!ck.contains("b"));
            ck.record("b", &Row { seed: 2, val: 1.5 }).unwrap();
        }
        // No NUL bytes, fully parseable, both records present.
        let healed = std::fs::read(&path).unwrap();
        assert!(!healed.contains(&0u8), "set_len must never extend the file");
        let mut replayed = Vec::new();
        Checkpoint::open(&path, |k, _| {
            replayed.push(k.to_string());
            true
        })
        .unwrap();
        assert_eq!(replayed, vec!["a", "b"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejected_records_stay_pending_and_recompute() {
        // Regression: a record the caller could not decode used to be
        // marked done anyway, so the work item was neither replayed nor
        // recomputed (a panic or silently missing rows downstream).
        let path = tmp("rejected");
        {
            let mut ck = Checkpoint::open(&path, |_, _| true).unwrap();
            ck.record("a", &Row { seed: 1, val: 0.5 }).unwrap();
        }
        // A decoder that rejects everything: "a" must stay pending.
        let ck = Checkpoint::open(&path, |_, _| false).unwrap();
        assert!(!ck.contains("a"));
        drop(ck);
        // Recompute appends a duplicate "a"; a later open must replay the
        // first *accepted* occurrence only, once.
        {
            let mut ck = Checkpoint::open(&path, |_, _| false).unwrap();
            ck.record("a", &Row { seed: 1, val: 9.5 }).unwrap();
        }
        let mut vals = Vec::new();
        let ck = Checkpoint::open(&path, |_, v| {
            vals.push(as_f64(field(v, "val").unwrap()).unwrap());
            true
        })
        .unwrap();
        assert_eq!(vals, vec![0.5], "duplicates of an accepted key replay once");
        assert!(ck.contains("a"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_middle_is_a_hard_error() {
        let path = tmp("corrupt");
        std::fs::write(&path, "not json\n{\"key\":\"a\",\"record\":1}\n").unwrap();
        assert!(Checkpoint::open(&path, |_, _| true).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_chunks_skips_done_items() {
        let path = tmp("chunks");
        let items: Vec<u64> = (0..10).collect();
        let key = |i: &u64| format!("item-{i}");
        // First run: compute everything.
        let mut ck = Some(Checkpoint::open(&path, |_, _| true).unwrap());
        let mut order = Vec::new();
        resume_chunks(
            &items,
            4,
            3,
            &mut ck,
            key,
            |i| Row {
                seed: *i,
                val: *i as f64,
            },
            |i, _| order.push(*i),
        )
        .unwrap();
        assert_eq!(order, items, "consume order must match item order");
        // Second run: everything is replayed, nothing recomputed.
        let mut replayed = 0;
        let mut ck = Some(
            Checkpoint::open(&path, |_, _| {
                replayed += 1;
                true
            })
            .unwrap(),
        );
        let mut computed = Vec::new();
        resume_chunks(
            &items,
            4,
            3,
            &mut ck,
            key,
            |i| Row { seed: *i, val: 0.0 },
            |i, _| computed.push(*i),
        )
        .unwrap();
        assert_eq!(replayed, 10);
        assert!(computed.is_empty(), "no pending work after a full run");
        std::fs::remove_file(&path).unwrap();
    }
}
