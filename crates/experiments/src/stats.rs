//! Small statistics helpers for experiment aggregation.

/// Mean of a sample (`None` when empty).
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample standard deviation (`None` for fewer than two points).
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// One aggregated point of a figure series.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SeriesPoint {
    /// The x coordinate (granularity, task count, …).
    pub x: f64,
    /// Sample mean of the metric.
    pub mean: f64,
    /// Sample standard deviation (0 for singleton samples).
    pub std: f64,
    /// Sample size.
    pub n: usize,
}

impl SeriesPoint {
    /// Aggregate a sample at `x`; `None` when the sample is empty.
    pub fn from_sample(x: f64, xs: &[f64]) -> Option<Self> {
        Some(Self {
            x,
            mean: mean(xs)?,
            std: std_dev(xs).unwrap_or(0.0),
            n: xs.len(),
        })
    }
}

/// A named data series.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Series {
    /// Legend label (matches the paper's figure legends).
    pub name: String,
    /// Aggregated points in x order.
    pub points: Vec<SeriesPoint>,
}

/// A complete figure: axes metadata plus its series.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Figure {
    /// Short identifier, e.g. `fig3a`.
    pub id: String,
    /// Human-readable caption.
    pub title: String,
    /// X axis label.
    pub xlabel: String,
    /// Y axis label.
    pub ylabel: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as CSV: `x,series1,series2,…` with one row per x value.
    ///
    /// Non-finite points are skipped with a warning on stderr: a NaN x
    /// used to panic the row sort (`partial_cmp().unwrap()`), and NaN is
    /// blind to the `(y − x).abs() < 1e-12` dedup/match predicates — such
    /// a point would emit a duplicated row of empty cells.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        write!(s, "x").unwrap();
        for series in &self.series {
            write!(s, ",{}", series.name.replace(',', ";")).unwrap();
        }
        s.push('\n');
        let mut dropped = 0usize;
        let mut xs: Vec<f64> = Vec::new();
        for p in self.series.iter().flat_map(|se| se.points.iter()) {
            if !p.x.is_finite() || !p.mean.is_finite() {
                dropped += 1;
                continue;
            }
            if !xs.iter().any(|&y| (y - p.x).abs() < 1e-12) {
                xs.push(p.x);
            }
        }
        if dropped > 0 {
            eprintln!(
                "warning: figure {}: skipping {dropped} non-finite point(s) in CSV export",
                self.id
            );
        }
        xs.sort_by(f64::total_cmp);
        for x in xs {
            write!(s, "{x:.4}").unwrap();
            for series in &self.series {
                let cell = series
                    .points
                    .iter()
                    .find(|p| p.mean.is_finite() && (p.x - x).abs() < 1e-12);
                match cell {
                    Some(p) => write!(s, ",{:.6}", p.mean).unwrap(),
                    None => write!(s, ",").unwrap(),
                }
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[1.0]), None);
        let sd = std_dev(&[2.0, 4.0]).unwrap();
        assert!((sd - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn series_point() {
        assert!(SeriesPoint::from_sample(1.0, &[]).is_none());
        let p = SeriesPoint::from_sample(1.0, &[3.0]).unwrap();
        assert_eq!(p.mean, 3.0);
        assert_eq!(p.std, 0.0);
        assert_eq!(p.n, 1);
    }

    #[test]
    fn csv_layout() {
        let fig = Figure {
            id: "t".into(),
            title: "t".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![
                Series {
                    name: "a".into(),
                    points: vec![SeriesPoint::from_sample(0.2, &[1.0]).unwrap()],
                },
                Series {
                    name: "b".into(),
                    points: vec![SeriesPoint::from_sample(0.4, &[2.0]).unwrap()],
                },
            ],
        };
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert!(lines[1].starts_with("0.2000,1.000000,"));
        assert!(lines[2].ends_with(",2.000000"));
    }

    #[test]
    fn csv_skips_non_finite_points() {
        // Regression: a NaN x panicked the row sort, and NaN never
        // matches the dedup/match predicates, duplicating empty rows.
        let fig = Figure {
            id: "nan".into(),
            title: "t".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![
                Series {
                    name: "a".into(),
                    points: vec![
                        SeriesPoint::from_sample(f64::NAN, &[1.0]).unwrap(),
                        SeriesPoint::from_sample(0.5, &[2.0]).unwrap(),
                        SeriesPoint::from_sample(0.7, &[f64::NAN]).unwrap(),
                    ],
                },
                Series {
                    name: "b".into(),
                    points: vec![
                        SeriesPoint::from_sample(0.5, &[3.0]).unwrap(),
                        SeriesPoint::from_sample(f64::INFINITY, &[4.0]).unwrap(),
                    ],
                },
            ],
        };
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2, "one header + one finite row: {csv}");
        assert_eq!(lines[1], "0.5000,2.000000,3.000000");
        assert!(!csv.contains("NaN") && !csv.contains("inf"));
    }
}
