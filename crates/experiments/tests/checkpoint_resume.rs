//! Kill-and-resume differential tests: a checkpointed sweep interrupted
//! mid-way (journal chopped inside a record, the on-disk signature of a
//! `SIGKILL` during a write) and resumed must produce exactly the same
//! records as an uninterrupted run — and must not re-journal (i.e. not
//! recompute) the work items that were already complete.

use ltf_core::search::pareto::ParetoOptions;
use ltf_experiments::figures::{sweep_checkpointed, SweepConfig};
use ltf_experiments::pareto::{workload_sweep, FrontRow, WorkloadSweepConfig};
use ltf_experiments::scaling::{scaling_sweep_checkpointed, ScalingConfig};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ltf-resume-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Chop the journal after `keep` complete lines and leave a torn prefix
/// of the next one, as a kill mid-write would.
fn interrupt(path: &PathBuf, keep: usize) {
    let text = std::fs::read_to_string(path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() > keep + 1,
        "journal too short to interrupt: {} lines",
        lines.len()
    );
    let mut chopped: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    chopped.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(path, chopped).unwrap();
}

fn sweep_cfg() -> WorkloadSweepConfig {
    WorkloadSweepConfig {
        instances: 6,
        seed: 0xFEED,
        utilization: 0.25,
        algo: "rltf".to_string(),
        opts: ParetoOptions {
            max_epsilon: Some(1),
            max_procs: Some(3),
            relax_steps: 1,
            iterations: 10,
            ..Default::default()
        },
        threads: 2,
    }
}

#[test]
fn workload_sweep_resumes_identically() {
    let cfg = sweep_cfg();

    // Uninterrupted run, no journal: the reference row stream.
    let mut reference: Vec<FrontRow> = Vec::new();
    workload_sweep(&cfg, None, |row| reference.push(row.clone())).unwrap();
    assert!(
        reference.len() >= cfg.instances,
        "at least one row per instance"
    );

    // Checkpointed run, then kill it mid-journal.
    let journal = tmp("workload");
    let mut first: Vec<FrontRow> = Vec::new();
    workload_sweep(&cfg, Some(&journal), |row| first.push(row.clone())).unwrap();
    assert_eq!(first, reference, "journalling must not change the rows");
    let full_text = std::fs::read_to_string(&journal).unwrap();
    interrupt(&journal, 3);

    // Resume: replayed + freshly computed rows, in the original order.
    let mut resumed: Vec<FrontRow> = Vec::new();
    workload_sweep(&cfg, Some(&journal), |row| resumed.push(row.clone())).unwrap();
    assert_eq!(resumed, reference, "resumed row stream differs");

    // The journal healed to exactly the uninterrupted state: same
    // complete set of keys, the untouched prefix byte-identical, and the
    // already-complete items not re-journalled (no duplicate keys).
    let healed_text = std::fs::read_to_string(&journal).unwrap();
    let full: Vec<&str> = full_text.lines().collect();
    let healed: Vec<&str> = healed_text.lines().collect();
    assert_eq!(healed.len(), full.len(), "journal line count");
    assert_eq!(&healed[..3], &full[..3], "completed prefix was rewritten");
    let mut keys: Vec<String> = healed
        .iter()
        .map(|l| l.split("\"record\"").next().unwrap().to_string())
        .collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), cfg.instances, "duplicate journal keys");

    // Resuming a *complete* journal recomputes nothing: every row is
    // replayed and the file is untouched.
    let mut replay_only: Vec<FrontRow> = Vec::new();
    workload_sweep(&cfg, Some(&journal), |row| replay_only.push(row.clone())).unwrap();
    assert_eq!(replay_only, reference);
    assert_eq!(std::fs::read_to_string(&journal).unwrap(), healed_text);

    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn journal_shared_across_configs_never_mixes_records() {
    // Regression: the replay filter used to accept any `pareto:` key, so
    // a journal shared across --algo runs emitted the old config's rows
    // on top of recomputing the new one; fig keys used the granularity
    // *index*, silently replaying records measured at other
    // granularities. Keys now pin the full configuration.
    let journal = tmp("cross-config");
    let cfg_rltf = sweep_cfg();
    let mut rltf_rows: Vec<FrontRow> = Vec::new();
    workload_sweep(&cfg_rltf, Some(&journal), |row| rltf_rows.push(row.clone())).unwrap();

    // Same journal, different heuristic: none of the rltf rows may leak
    // into the output, and the ltf work is computed (journal grows).
    let lines_before = std::fs::read_to_string(&journal).unwrap().lines().count();
    let cfg_ltf = WorkloadSweepConfig {
        algo: "ltf".to_string(),
        ..sweep_cfg()
    };
    let mut reference_ltf: Vec<FrontRow> = Vec::new();
    workload_sweep(&cfg_ltf, None, |row| reference_ltf.push(row.clone())).unwrap();
    let mut shared_ltf: Vec<FrontRow> = Vec::new();
    workload_sweep(&cfg_ltf, Some(&journal), |row| shared_ltf.push(row.clone())).unwrap();
    assert_eq!(
        shared_ltf, reference_ltf,
        "foreign rows leaked into the output"
    );
    let lines_after = std::fs::read_to_string(&journal).unwrap().lines().count();
    assert_eq!(
        lines_after,
        lines_before + cfg_ltf.instances,
        "ltf run must journal its own items without disturbing rltf's"
    );

    // And the original configuration still resumes cleanly from the now
    // mixed journal.
    let mut rltf_again: Vec<FrontRow> = Vec::new();
    workload_sweep(&cfg_rltf, Some(&journal), |row| {
        rltf_again.push(row.clone())
    })
    .unwrap();
    assert_eq!(rltf_again, rltf_rows);

    // Figure sweeps: same journal, different granularity grid — the old
    // index-based keys would have replayed g=0.6 records as g=0.8 data.
    let fig_cfg = SweepConfig {
        graphs_per_point: 2,
        granularities: vec![0.6],
        crash_draws: 2,
        threads: 2,
        ..Default::default()
    };
    sweep_checkpointed(1, 1, &fig_cfg, Some(&journal)).unwrap();
    let other_grid = SweepConfig {
        granularities: vec![0.8],
        ..fig_cfg.clone()
    };
    let fresh = sweep_checkpointed(1, 1, &other_grid, None).unwrap();
    let shared = sweep_checkpointed(1, 1, &other_grid, Some(&journal)).unwrap();
    assert_eq!(shared.by_granularity[0].0, 0.8);
    let (a, b) = (&shared.by_granularity[0].1, &fresh.by_granularity[0].1);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.granularity, y.granularity,
            "foreign-granularity record replayed"
        );
        assert_eq!(x.latency_ub, y.latency_ub);
    }
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn figure_sweep_resumes_identically() {
    let cfg = SweepConfig {
        graphs_per_point: 4,
        granularities: vec![0.6, 1.2],
        crash_draws: 2,
        threads: 2,
        ..Default::default()
    };
    let reference = sweep_checkpointed(1, 1, &cfg, None).unwrap();

    let journal = tmp("figs");
    sweep_checkpointed(1, 1, &cfg, Some(&journal)).unwrap();
    interrupt(&journal, 2);
    let resumed = sweep_checkpointed(1, 1, &cfg, Some(&journal)).unwrap();

    // Same shape, same records, same order (timings of replayed records
    // come from the journal, so the comparison must skip sched_micros —
    // compare everything else field by field).
    assert_eq!(resumed.by_granularity.len(), reference.by_granularity.len());
    for ((g_a, recs_a), (g_b, recs_b)) in
        resumed.by_granularity.iter().zip(&reference.by_granularity)
    {
        assert_eq!(g_a, g_b);
        assert_eq!(recs_a.len(), recs_b.len());
        for (a, b) in recs_a.iter().zip(recs_b) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.algo, b.algo);
            assert_eq!(a.feasible, b.feasible);
            assert_eq!(a.stages, b.stages);
            assert_eq!(a.latency_ub, b.latency_ub);
            assert_eq!(a.latency_0, b.latency_0);
            assert_eq!(a.latency_crash, b.latency_crash);
            assert_eq!(a.crash_losses, b.crash_losses);
            assert_eq!(a.comms, b.comms);
            assert_eq!(a.procs_used, b.procs_used);
        }
    }
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn scaling_sweep_resumes_identically() {
    let cfg = ScalingConfig {
        task_counts: vec![20],
        proc_counts: vec![8],
        epsilons: vec![1],
        reps: 2,
        threads: 2,
        ..Default::default()
    };
    let reference = scaling_sweep_checkpointed(&cfg, None).unwrap();

    let journal = tmp("scaling");
    scaling_sweep_checkpointed(&cfg, Some(&journal)).unwrap();
    interrupt(&journal, 2);
    let resumed = scaling_sweep_checkpointed(&cfg, Some(&journal)).unwrap();

    assert_eq!(resumed.len(), reference.len());
    for (a, b) in resumed.iter().zip(&reference) {
        assert_eq!(
            (a.v, a.m, a.epsilon, &a.algo),
            (b.v, b.m, b.epsilon, &b.algo)
        );
        assert_eq!(a.feasible, b.feasible);
        assert_eq!(a.reps, b.reps);
        // micros is a wall-clock measurement; replayed points keep the
        // measuring run's value, fresh points re-measure — both are fine.
    }
    std::fs::remove_file(&journal).unwrap();
}
