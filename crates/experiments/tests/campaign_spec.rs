//! Campaign-spec error corpus and expansion goldens: one test per
//! rejection class (each asserting the *typed* [`SpecError`] variant, not
//! just "some error"), plus golden checks on matrix expansion order,
//! work-item flattening, and shard partition coverage — the properties
//! the distributed merge's byte-identity rests on.

use ltf_core::shard::Shard;
use ltf_experiments::campaign::{
    slo_cells, slo_work_items, work_items, CampaignSpec, SpecError, TopologyShape, DEFAULT_SEED,
};
use ltf_experiments::{gen_instance, gen_instance_on};

/// A minimal valid spec; each corpus test breaks exactly one thing.
fn valid() -> String {
    r#"{
      "name": "corpus",
      "graphs": ["fig1"],
      "heuristics": ["rltf"]
    }"#
    .to_string()
}

#[test]
fn valid_spec_parses_and_expands() {
    let spec = CampaignSpec::parse(&valid()).unwrap();
    let exps = spec.expand().unwrap();
    assert_eq!(exps.len(), 1);
    assert_eq!(exps[0].label, "fig1/rltf/eps=all");
    assert_eq!(exps[0].instances, 1);
    assert_eq!(exps[0].base_seed, DEFAULT_SEED);
}

#[test]
fn malformed_json_is_a_parse_error() {
    match CampaignSpec::parse(r#"{"name": "x", "graphs": ["#) {
        Err(SpecError::Parse(_)) => {}
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn unknown_field_is_a_parse_error_naming_the_field() {
    let text = valid().replace(r#""name": "corpus","#, r#""name": "corpus", "grpahs": [],"#);
    match CampaignSpec::parse(&text) {
        Err(SpecError::Parse(msg)) => assert!(msg.contains("grpahs"), "{msg}"),
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn wrong_typed_field_is_a_parse_error() {
    let text = valid().replace(r#"["fig1"]"#, r#""fig1""#);
    match CampaignSpec::parse(&text) {
        Err(SpecError::Parse(_)) => {}
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn empty_axis_is_typed_and_names_the_axis() {
    let text = valid().replace(r#"["rltf"]"#, "[]");
    let spec = CampaignSpec::parse(&text).unwrap();
    match spec.expand() {
        Err(SpecError::EmptyAxis(axis)) => assert_eq!(axis, "heuristics"),
        other => panic!("expected EmptyAxis, got {other:?}"),
    }
    // Optional axes declared-but-empty are rejected too (absence means
    // "default", an empty list means "no cells" — a silent zero-matrix).
    let mut spec = CampaignSpec::parse(&valid()).unwrap();
    spec.platform_procs = Some(vec![]);
    match spec.expand() {
        Err(SpecError::EmptyAxis(axis)) => assert_eq!(axis, "platform_procs"),
        other => panic!("expected EmptyAxis, got {other:?}"),
    }
}

#[test]
fn inverted_epsilon_band_is_typed_with_both_bounds() {
    let text = valid().replace(
        r#""heuristics": ["rltf"]"#,
        r#""heuristics": ["rltf"], "epsilons": [{"min": 3, "max": 1}]"#,
    );
    let spec = CampaignSpec::parse(&text).unwrap();
    match spec.expand() {
        Err(SpecError::BadEpsilonRange { min: 3, max: 1 }) => {}
        other => panic!("expected BadEpsilonRange{{3,1}}, got {other:?}"),
    }
}

#[test]
fn out_of_domain_values_are_bad_values() {
    let mut spec = CampaignSpec::parse(&valid()).unwrap();
    spec.instances = Some(0);
    assert!(matches!(spec.expand(), Err(SpecError::BadValue(_))));
    let mut spec = CampaignSpec::parse(&valid()).unwrap();
    spec.utilizations = Some(vec![-0.5]);
    assert!(matches!(spec.expand(), Err(SpecError::BadValue(_))));
}

#[test]
fn unknown_graph_and_heuristic_are_distinct_errors() {
    let spec = CampaignSpec::parse(&valid().replace("fig1", "fig9")).unwrap();
    match spec.expand() {
        Err(SpecError::UnknownGraph(name)) => assert_eq!(name, "fig9"),
        other => panic!("expected UnknownGraph, got {other:?}"),
    }
    let spec = CampaignSpec::parse(&valid().replace("rltf", "magic")).unwrap();
    match spec.expand() {
        Err(SpecError::UnknownHeuristic(name)) => assert_eq!(name, "magic"),
        other => panic!("expected UnknownHeuristic, got {other:?}"),
    }
}

/// Expansion order is the contract item indices, seeds and the merge all
/// hang off: graphs × heuristics × ε-bands, outermost first.
#[test]
fn expansion_order_is_the_documented_cartesian_product() {
    let text = r#"{
      "name": "order",
      "graphs": ["fig1", "fig2-variant"],
      "heuristics": ["rltf", "ltf"],
      "epsilons": [{"max": 1}, {"min": 2, "max": 2}]
    }"#;
    let spec = CampaignSpec::parse(text).unwrap();
    let labels: Vec<String> = spec
        .expand()
        .unwrap()
        .into_iter()
        .map(|e| e.label)
        .collect();
    assert_eq!(
        labels,
        [
            "fig1/rltf/eps=..1",
            "fig1/rltf/eps=2..2",
            "fig1/ltf/eps=..1",
            "fig1/ltf/eps=2..2",
            "fig2-variant/rltf/eps=..1",
            "fig2-variant/rltf/eps=2..2",
            "fig2-variant/ltf/eps=..1",
            "fig2-variant/ltf/eps=2..2",
        ]
    );
}

#[test]
fn seeds_are_stable_per_experiment_not_per_run() {
    let spec = CampaignSpec::parse(&valid()).unwrap();
    let a = spec.expand().unwrap();
    let b = spec.expand().unwrap();
    let key = |e: &ltf_experiments::campaign::Experiment| (e.index, e.label.clone(), e.base_seed);
    assert_eq!(
        a.iter().map(&key).collect::<Vec<_>>(),
        b.iter().map(&key).collect::<Vec<_>>(),
        "expansion must be a pure function of the spec"
    );
    // An explicit seed shifts every experiment deterministically.
    let mut seeded = spec.clone();
    seeded.seed = Some(42);
    let c = seeded.expand().unwrap();
    assert_ne!(a[0].base_seed, c[0].base_seed);
}

/// Every work item is owned by exactly one shard, for any shard count —
/// the partition the coordinator's merge completeness check relies on.
#[test]
fn work_items_partition_exactly_across_shards() {
    let text = r#"{
      "name": "partition",
      "graphs": ["workload"],
      "heuristics": ["rltf"],
      "instances": 5,
      "platform_procs": [4, 8]
    }"#;
    let spec = CampaignSpec::parse(text).unwrap();
    let items = work_items(&spec.expand().unwrap());
    assert_eq!(items.len(), 10, "2 experiments × 5 instances");
    // Items are globally indexed in order.
    for (i, wi) in items.iter().enumerate() {
        assert_eq!(wi.item, i);
    }
    for n in 1..=4 {
        let mut owned = vec![0usize; items.len()];
        for k in 0..n {
            let shard = Shard::new(k, n).unwrap();
            for wi in &items {
                if shard.owns(wi.item) {
                    owned[wi.item] += 1;
                }
            }
        }
        assert!(
            owned.iter().all(|&c| c == 1),
            "every item owned exactly once for n={n}: {owned:?}"
        );
    }
}

#[test]
fn signature_tracks_spec_content() {
    let a = CampaignSpec::parse(&valid()).unwrap();
    let mut b = a.clone();
    assert_eq!(a.signature(), b.signature());
    b.seed = Some(1);
    assert_ne!(
        a.signature(),
        b.signature(),
        "journal keys must not collide across different specs"
    );
}

/// A minimal valid SLO spec; each corpus test below breaks one thing.
fn valid_slo() -> String {
    r#"{
      "name": "slo-corpus",
      "graphs": ["fig1"],
      "heuristics": ["rltf"],
      "epsilons": [{"max": 1}],
      "failure": {"rate": 0.01, "period": 30.0},
      "slo": {"max_latency": 100.0, "max_violation_rate": 0.1}
    }"#
    .to_string()
}

/// Expand a broken-by-substitution SLO spec and return its `BadValue`
/// message (panicking on any other outcome). Validation runs at
/// expansion, like the rest of the corpus.
fn slo_bad_value(from: &str, to: &str) -> String {
    let spec = CampaignSpec::parse(&valid_slo().replace(from, to)).unwrap();
    match spec.expand() {
        Err(SpecError::BadValue(msg)) => msg,
        other => panic!("expected BadValue for {to:?}, got {other:?}"),
    }
}

#[test]
fn valid_slo_spec_parses_and_expands_cells() {
    let spec = CampaignSpec::parse(&valid_slo()).unwrap();
    let exps = spec.expand().unwrap();
    let cells = slo_cells(&exps);
    assert_eq!(cells.len(), 2, "ε ∈ {{0, 1}} × 1 instance");
    assert_eq!(cells[0].label, "fig1/rltf/eps=..1/eps=0/inst=0");
    assert_eq!(cells[1].epsilon, 1);
    let f = spec.failure.as_ref().unwrap();
    let items = slo_work_items(f, &cells);
    // Default 16 traces in blocks of 4 → 4 blocks per cell.
    assert_eq!(items.len(), 8);
    for (i, wi) in items.iter().enumerate() {
        assert_eq!(wi.item, i, "global item indices are dense");
        assert!(wi.t0 < wi.t1 && wi.t1 <= f.traces());
    }
}

#[test]
fn slo_without_failure_is_rejected() {
    let text = valid_slo().replace(r#""failure": {"rate": 0.01, "period": 30.0},"#, "");
    let spec = CampaignSpec::parse(&text).unwrap();
    match spec.expand() {
        Err(SpecError::BadValue(msg)) => assert!(msg.contains("requires"), "{msg}"),
        other => panic!("expected BadValue, got {other:?}"),
    }
}

#[test]
fn failure_needs_exactly_one_rate_form() {
    let msg = slo_bad_value(r#""rate": 0.01,"#, "");
    assert!(msg.contains("exactly one"), "{msg}");
    let msg = slo_bad_value(r#""rate": 0.01"#, r#""rate": 0.01, "rates": [0.01]"#);
    assert!(msg.contains("exactly one"), "{msg}");
    let msg = slo_bad_value(r#""rate": 0.01"#, r#""rate": -0.5"#);
    assert!(msg.contains("non-negative"), "{msg}");
}

#[test]
fn failure_counts_must_be_positive() {
    for field in ["traces", "items", "block"] {
        let msg = slo_bad_value(r#""rate": 0.01"#, &format!(r#""rate": 0.01, "{field}": 0"#));
        assert!(msg.contains(field) && msg.contains("≥ 1"), "{msg}");
    }
}

#[test]
fn fig_families_require_an_explicit_period() {
    let msg = slo_bad_value(r#", "period": 30.0"#, "");
    assert!(msg.contains("period"), "{msg}");
    let msg = slo_bad_value(r#""period": 30.0"#, r#""period": 0.0"#);
    assert!(msg.contains("positive"), "{msg}");
}

#[test]
fn policy_and_engine_domains_are_closed() {
    let msg = slo_bad_value(r#""period": 30.0"#, r#""period": 30.0, "policy": "heal""#);
    assert!(msg.contains("fail-stop"), "{msg}");
    let msg = slo_bad_value(r#""period": 30.0"#, r#""period": 30.0, "engine": "magic""#);
    assert!(msg.contains("asap"), "{msg}");
}

#[test]
fn slo_campaigns_reject_unbounded_bands_and_the_all_heuristic() {
    let msg = slo_bad_value(r#""epsilons": [{"max": 1}],"#, "");
    assert!(msg.contains("bounded"), "{msg}");
    let msg = slo_bad_value(r#"[{"max": 1}]"#, r#"[{"min": 1}]"#);
    assert!(msg.contains("bounded"), "{msg}");
    let msg = slo_bad_value(r#"["rltf"]"#, r#"["all"]"#);
    assert!(msg.contains("witness"), "{msg}");
}

#[test]
fn slo_threshold_domains_are_checked() {
    let msg = slo_bad_value(r#""max_latency": 100.0"#, r#""max_latency": -1.0"#);
    assert!(msg.contains("max_latency"), "{msg}");
    let msg = slo_bad_value(
        r#""max_violation_rate": 0.1"#,
        r#""max_violation_rate": 1.5"#,
    );
    assert!(msg.contains("[0, 1]"), "{msg}");
}

/// A minimal valid routed-workload spec; the topology corpus below breaks
/// one thing per case.
fn valid_topology() -> String {
    r#"{
      "name": "topo-corpus",
      "graphs": ["workload"],
      "heuristics": ["rltf"],
      "platform_procs": [4],
      "topology": {"shape": {"Chain": 0.5}}
    }"#
    .to_string()
}

/// Expand a broken-by-substitution topology spec and return its
/// `BadTopology` message (panicking on any other outcome).
fn topology_rejection(from: &str, to: &str) -> String {
    let spec = CampaignSpec::parse(&valid_topology().replace(from, to)).unwrap();
    match spec.expand() {
        Err(SpecError::BadTopology(msg)) => msg,
        other => panic!("expected BadTopology for {to:?}, got {other:?}"),
    }
}

#[test]
fn topology_spec_builds_routed_platforms() {
    let spec = CampaignSpec::parse(&valid_topology()).unwrap();
    let exps = spec.expand().unwrap();
    assert_eq!(exps.len(), 1);
    let topo = exps[0].topology.as_ref().expect("carried into the cell");
    // Default model is Contended: the platform keeps link identity — a
    // 4-processor chain has 3 physical links.
    let inst = gen_instance_on(&exps[0].workload, exps[0].base_seed, Some(topo));
    assert!(inst.platform.is_contended());
    assert_eq!(inst.platform.num_procs(), 4);
    assert_eq!(inst.platform.num_links(), 3);
    // Uniform mode flattens: same matrix, no links kept.
    let text =
        valid_topology().replace(r#"{"Chain": 0.5}"#, r#"{"Chain": 0.5}, "mode": "Uniform""#);
    let uni = CampaignSpec::parse(&text).unwrap().expand().unwrap();
    let flat = gen_instance_on(&uni[0].workload, uni[0].base_seed, uni[0].topology.as_ref());
    assert!(!flat.platform.is_contended());
    for k in flat.platform.procs() {
        assert_eq!(flat.platform.speed(k), inst.platform.speed(k));
        for h in flat.platform.procs() {
            assert_eq!(
                flat.platform.unit_delay(k, h).to_bits(),
                inst.platform.unit_delay(k, h).to_bits()
            );
        }
    }
    // Without a topology, `gen_instance_on` is exactly `gen_instance`.
    let a = gen_instance(&exps[0].workload, 7);
    let b = gen_instance_on(&exps[0].workload, 7, None);
    assert_eq!(a.graph.num_tasks(), b.graph.num_tasks());
    for k in a.platform.procs() {
        for h in a.platform.procs() {
            assert_eq!(
                a.platform.unit_delay(k, h).to_bits(),
                b.platform.unit_delay(k, h).to_bits()
            );
        }
    }
}

#[test]
fn topology_shapes_round_trip_through_the_wire_format() {
    // The `Links` shape rides the externally-tagged enum encoding with
    // `(a, b, delay)` triples.
    let text = valid_topology().replace(
        r#"{"Chain": 0.5}"#,
        r#"{"Links": [[0, 1, 0.5], [1, 2, 0.25], [2, 3, 0.5]]}"#,
    );
    let spec = CampaignSpec::parse(&text).unwrap();
    match &spec.topology.as_ref().unwrap().shape {
        TopologyShape::Links(links) => assert_eq!(links[1], (1, 2, 0.25)),
        other => panic!("expected Links, got {other:?}"),
    }
    let reparsed = CampaignSpec::parse(&serde_json::to_string(&spec).unwrap()).unwrap();
    assert_eq!(reparsed, spec);
    assert_eq!(reparsed.signature(), spec.signature());
    // Star parses too, and expansion accepts it.
    let star = valid_topology().replace("Chain", "Star");
    assert!(CampaignSpec::parse(&star).unwrap().expand().is_ok());
}

#[test]
fn topology_rejections_are_typed() {
    let msg = topology_rejection("0.5", "0.0");
    assert!(msg.contains("positive"), "{msg}");
    let msg = topology_rejection(r#"["workload"]"#, r#"["fig1"]"#);
    assert!(msg.contains("workload"), "{msg}");
    let links = |to: &str| topology_rejection(r#"{"Chain": 0.5}"#, to);
    let msg = links(r#"{"Links": []}"#);
    assert!(msg.contains("at least one"), "{msg}");
    let msg = links(r#"{"Links": [[0, 9, 0.5]]}"#);
    assert!(msg.contains("out of range"), "{msg}");
    let msg = links(r#"{"Links": [[1, 1, 0.5]]}"#);
    assert!(msg.contains("self-link"), "{msg}");
    let msg = links(r#"{"Links": [[0, 1, -2.0]]}"#);
    assert!(msg.contains("delay -2"), "{msg}");
    let msg = links(r#"{"Links": [[0, 1, 0.5]]}"#);
    assert!(msg.contains("disconnected at m=4"), "{msg}");
    // A shape valid at one swept size but not another names the bad size.
    let text = valid_topology().replace("[4]", "[4, 8]").replace(
        r#"{"Chain": 0.5}"#,
        r#"{"Links": [[0, 1, 0.5], [1, 2, 0.5], [2, 3, 0.5]]}"#,
    );
    match CampaignSpec::parse(&text).unwrap().expand() {
        Err(SpecError::BadTopology(msg)) => {
            assert!(msg.contains("disconnected at m=8"), "{msg}")
        }
        other => panic!("expected BadTopology, got {other:?}"),
    }
    // An unknown shape tag is a strict-decoder parse error.
    let text = valid_topology().replace("Chain", "Torus");
    assert!(matches!(
        CampaignSpec::parse(&text),
        Err(SpecError::Parse(_))
    ));
}

#[test]
fn topology_block_feeds_the_signature() {
    let a = CampaignSpec::parse(&valid_topology()).unwrap();
    let b = CampaignSpec::parse(&valid_topology().replace("Chain", "Star")).unwrap();
    let mut plain = a.clone();
    plain.topology = None;
    assert_ne!(a.signature(), b.signature());
    assert_ne!(a.signature(), plain.signature());
}

#[test]
fn failure_block_feeds_the_signature() {
    let a = CampaignSpec::parse(&valid_slo()).unwrap();
    let b = CampaignSpec::parse(&valid_slo().replace("0.01", "0.02")).unwrap();
    assert_ne!(
        a.signature(),
        b.signature(),
        "trace sampling is keyed by the signature, so failure params must feed it"
    );
}
