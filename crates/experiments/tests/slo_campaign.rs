//! SLO-campaign determinism and replay-property tests: the rendered
//! report must be byte-identical across thread counts and shard
//! partitions (the contract the distributed coordinator builds on), and
//! the replay layer must respect the paper's structural orderings —
//! eager execution never increases a produced item's latency, and more
//! replication never loses more items on the same crash traces.

use ltf_baselines::full_solver;
use ltf_core::shard::Shard;
use ltf_core::AlgoConfig;
use ltf_experiments::campaign::{
    build_slo_report, run_slo_serial, run_slo_shard, CampaignSpec, Merger, SloItemResult,
};
use ltf_experiments::pareto::ParetoInstance;
use ltf_faultlab::{replay, FailureModel, ReplayConfig, SimEngine};
use ltf_sim::{RecoveryPolicy, SimReport};

const SPEC: &str = r#"{
  "name": "slo-props",
  "graphs": ["fig1"],
  "heuristics": ["rltf", "ltf"],
  "epsilons": [{"max": 1}],
  "failure": {"rate": 0.003, "traces": 6, "items": 8, "block": 2,
              "period": 30.0, "policy": "reroute"},
  "slo": {"max_latency": 200.0, "max_violation_rate": 0.25}
}"#;

#[test]
fn report_is_byte_identical_across_threads_and_shards() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let baseline = run_slo_serial(&spec, 1, None).unwrap();
    assert!(
        baseline.rows.iter().any(|r| r.feasible && r.items > 0),
        "the fixture must actually replay something"
    );

    for threads in [2, 4] {
        let got = run_slo_serial(&spec, threads, None).unwrap();
        assert_eq!(
            got.json_lines(),
            baseline.json_lines(),
            "thread count {threads} leaked into the report"
        );
    }

    // Re-partition into N shards, merge the union, rebuild the report:
    // the trace streams are keyed by (signature, global index), so the
    // partition must be invisible.
    let exps = spec.expand().unwrap();
    let f = spec.failure.as_ref().unwrap();
    let expected =
        ltf_experiments::campaign::slo_work_items(f, &ltf_experiments::campaign::slo_cells(&exps))
            .len();
    for n in [2, 3] {
        let mut merger: Merger<SloItemResult> = Merger::new(expected);
        for k in 0..n {
            let shard = Shard::new(k, n).unwrap();
            run_slo_shard(&spec, shard, 1, None, |r| {
                merger.insert(r.clone()).unwrap();
            })
            .unwrap();
        }
        let got = build_slo_report(&spec, &merger.finish().unwrap()).unwrap();
        assert_eq!(
            got.json_lines(),
            baseline.json_lines(),
            "{n}-way sharding leaked into the report"
        );
    }
}

/// One solved fig1 witness plus a bundle of sampled traces replayed
/// through it with `engine`/`policy`.
fn replay_fig1(epsilon: u8, engine: SimEngine, policy: RecoveryPolicy) -> Vec<SimReport> {
    let (g, p, _) = ParetoInstance::Fig1.build(7, 0.25);
    let solver = full_solver(&g, &p);
    let sol = solver
        .solve("rltf", &AlgoConfig::new(epsilon, 30.0))
        .expect("fig1 witness is feasible");
    ltf_schedule::validate(&g, &p, &sol.schedule).expect("witness validates");
    let model = FailureModel::uniform(p.num_procs(), 0.004);
    let cfg = ReplayConfig {
        items: 10,
        policy,
        engine,
    };
    (0..24)
        .map(|t| replay(&g, &p, &sol.schedule, model.sample_trace(0xF00D, t), &cfg))
        .collect()
}

#[test]
fn asap_never_produces_an_item_later_than_synchronous() {
    for policy in [RecoveryPolicy::FailStop, RecoveryPolicy::Reroute] {
        let sync = replay_fig1(1, SimEngine::Synchronous, policy);
        let asap = replay_fig1(1, SimEngine::Asap, policy);
        let mut compared = 0usize;
        for (s, a) in sync.iter().zip(&asap) {
            for (ls, la) in s.item_latency.iter().zip(&a.item_latency) {
                if let (Some(ls), Some(la)) = (ls, la) {
                    assert!(
                        *la <= *ls + 1e-9,
                        "asap item latency {la} exceeds synchronous {ls} ({policy:?})"
                    );
                    compared += 1;
                }
            }
        }
        assert!(compared > 0, "no items produced under both engines");
    }
}

#[test]
fn replication_never_loses_more_items_on_the_same_traces() {
    for engine in [SimEngine::Synchronous, SimEngine::Asap] {
        let eps0 = replay_fig1(0, engine, RecoveryPolicy::Reroute);
        let eps1 = replay_fig1(1, engine, RecoveryPolicy::Reroute);
        let lost = |reports: &[SimReport]| -> usize {
            reports
                .iter()
                .flat_map(|r| &r.item_latency)
                .filter(|l| l.is_none())
                .count()
        };
        let (l0, l1) = (lost(&eps0), lost(&eps1));
        assert!(
            l0 >= l1,
            "ε=0 lost {l0} items but ε=1 lost {l1} on the same traces ({engine:?})"
        );
        assert!(l0 > 0, "failure rate too low to exercise loss at ε=0");
    }
}
