//! Failure-injection drill: exhaustively verify the ε-guarantee of both
//! heuristics on a batch of random workflows, then watch latency degrade
//! gracefully as more processors die than the schedule was built for.
//!
//! ```text
//! cargo run --release --example fault_drill
//! ```

use ltf_sched::core::{AlgoConfig, Heuristic, Ltf, PreparedInstance, Rltf};
use ltf_sched::graph::generate::{layered, LayeredConfig};
use ltf_sched::platform::Platform;
use ltf_sched::schedule::failures::{
    all_crash_sets, effective_latency, tolerates_all_crashes, worst_case_latency,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let m = 10;
    let p = Platform::homogeneous(m, 1.0, 0.05);
    let mut rng = StdRng::seed_from_u64(7);
    let epsilon = 2u8;
    let period = 16.0;

    println!("exhaustive ε-guarantee check (ε = {epsilon}, m = {m}):");
    let mut checked = 0;
    for seed in 0..8u64 {
        let g = layered(
            &LayeredConfig {
                tasks: 24,
                exec_range: (0.5, 2.0),
                volume_range: (2.0, 8.0),
                ..Default::default()
            },
            &mut rng,
        );
        let cfg = AlgoConfig::new(epsilon, period).seeded(seed);
        let prep = PreparedInstance::new(&g, &p);
        for (name, res) in [
            ("LTF", Ltf.schedule(&prep, &cfg)),
            ("R-LTF", Rltf.schedule(&prep, &cfg)),
        ] {
            let Ok(s) = res else { continue };
            // Every C(10, 2) = 45 double-crash pattern must be survived.
            assert!(
                tolerates_all_crashes(&g, &s, m, epsilon as usize),
                "{name} seed {seed} violates the ε-guarantee"
            );
            checked += 1;
        }
    }
    println!("  {checked} schedules × all crash pairs: all outputs preserved ✓\n");

    // Degradation beyond the design point on one schedule.
    let g = layered(
        &LayeredConfig {
            tasks: 24,
            exec_range: (0.5, 2.0),
            volume_range: (2.0, 8.0),
            ..Default::default()
        },
        &mut rng,
    );
    let cfg = AlgoConfig::new(epsilon, period).seeded(99);
    let s = Rltf
        .schedule(&PreparedInstance::new(&g, &p), &cfg)
        .expect("schedulable");
    println!(
        "degradation beyond the design point (ε = {epsilon}, S = {}):",
        s.num_stages()
    );
    for c in 0..=4usize {
        let survived = all_crash_sets(m, c)
            .filter(|cs| effective_latency(&g, &s, cs).is_some())
            .count();
        let total = all_crash_sets(m, c).count();
        match worst_case_latency(&g, &s, m, c) {
            Some(l) => println!(
                "  {c} crashes: {survived}/{total} patterns survived, worst latency {l:.1}"
            ),
            None => {
                println!("  {c} crashes: {survived}/{total} patterns survived (some outputs lost)")
            }
        }
    }
    println!("\nwithin ε the guarantee is absolute; beyond it, degradation is gradual.");
}
