//! DSP workbench: schedule the classic signal-processing dataflows from
//! the paper's motivating domain (FFT, filter bank, video encoder GOP,
//! map-reduce, wavefront) and compare LTF vs R-LTF across all of them —
//! with a Gantt chart and JSON export for one schedule.
//!
//! ```text
//! cargo run --release --example dsp_workbench
//! ```

use ltf_sched::core::{search, AlgoConfig, Solver};
use ltf_sched::graph::generate::apps;
use ltf_sched::graph::TaskGraph;
use ltf_sched::platform::Platform;
use ltf_sched::schedule::export::{gantt, summarize};
use ltf_sched::schedule::validate;

fn main() {
    let apps: Vec<(&str, TaskGraph)> = vec![
        ("fft(16-point)", apps::fft(4)),
        ("filter_bank(8x4)", apps::filter_bank(8, 4)),
        (
            "video_encoder(2 frames x 6 slices)",
            apps::video_encoder(2, 6),
        ),
        ("mapreduce(6x4)", apps::mapreduce(6, 4)),
        ("wavefront(6x6)", apps::wavefront(6, 6)),
    ];
    let p = Platform::homogeneous(8, 1.0, 0.15);

    println!(
        "{:<36} {:>5} {:>5} | {:>14} | {:>14}",
        "application", "v", "e", "LTF  (S, L)", "R-LTF (S, L)"
    );
    for (name, g) in &apps {
        // Size the period from the maximal-throughput search so every app
        // runs at a comparable 70%-of-peak operating point, ε = 1.
        let opts = search::SearchOptions {
            epsilon: 1,
            ..Default::default()
        };
        let solver = Solver::builtin(g, &p);
        let Some((best, _)) = search::min_period(g, &p, solver.heuristic("rltf").unwrap(), &opts)
        else {
            println!("{name:<36} unschedulable");
            continue;
        };
        let cfg = AlgoConfig::new(1, best / 0.7);
        let fmt = |r: Result<ltf_sched::core::Solution, _>| match r {
            Ok(sol) => {
                validate(g, &p, &sol.schedule).expect("valid");
                format!(
                    "S={:<2} L={:<7.1}",
                    sol.metrics.stages, sol.metrics.latency_upper_bound
                )
            }
            Err(_) => "fails".to_string(),
        };
        println!(
            "{:<36} {:>5} {:>5} | {:>14} | {:>14}",
            name,
            g.num_tasks(),
            g.num_edges(),
            fmt(solver.solve("ltf", &cfg)),
            fmt(solver.solve("rltf", &cfg)),
        );
    }

    // Deep dive: Gantt + JSON for the 16-point FFT.
    let g = apps::fft(4);
    let opts = search::SearchOptions {
        epsilon: 1,
        ..Default::default()
    };
    let solver = Solver::builtin(&g, &p);
    let rltf = solver.heuristic("rltf").unwrap();
    let (best, _) = search::min_period(&g, &p, rltf, &opts).expect("feasible");
    let cfg = AlgoConfig::new(1, best / 0.7);
    let s = solver
        .solve("rltf", &cfg)
        .expect("feasible")
        .into_schedule();
    println!(
        "\nR-LTF on the 16-point FFT (ε = 1, Δ = {:.2}):",
        s.period()
    );
    print!("{}", gantt(&g, &p, &s, 72));
    let summary = summarize(&g, &p, &s);
    let json = serde_json::to_string_pretty(&summary).expect("serializable");
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/fft_schedule.json", &json).expect("write json");
    println!(
        "\nfull schedule exported to results/fft_schedule.json ({} bytes)",
        json.len()
    );
}
