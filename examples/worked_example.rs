//! The paper's §4.3 worked example (Fig. 2): LTF vs R-LTF on the 7-task
//! workflow, ε = 1, T = 0.05 (period 20), homogeneous processors.
//!
//! The archived report's figure graphics are not recoverable; DESIGN.md
//! §2.10 explains the reconstruction and the `E(t2) = 3` variant on which
//! the paper's exact claims hold end to end.
//!
//! ```text
//! cargo run --release --example worked_example
//! ```

use ltf_sched::core::{AlgoConfig, Solver};
use ltf_sched::graph::generate::{fig2_workflow, fig2_workflow_variant};
use ltf_sched::platform::Platform;
use ltf_sched::schedule::validate;

fn main() {
    let cfg = AlgoConfig::with_throughput(1, 0.05);
    for (name, g) in [
        ("reconstruction (E(t2) = 6)", fig2_workflow()),
        ("variant (E(t2) = 3)", fig2_workflow_variant()),
    ] {
        println!("=== {name} ===");
        for m in [8usize, 10] {
            let p = Platform::homogeneous(m, 1.0, 1.0);
            let solver = Solver::builtin(&g, &p);
            for (label, res) in [
                ("LTF  ", solver.solve("ltf", &cfg)),
                ("R-LTF", solver.solve("rltf", &cfg)),
            ] {
                match res {
                    Ok(sol) => {
                        let s = &sol.schedule;
                        validate(&g, &p, s).expect("valid schedule");
                        println!(
                            "  {label} m={m:<2}: S = {}  L = {:<5.0} comms = {:<2} procs = {}",
                            s.num_stages(),
                            s.latency_upper_bound(),
                            s.comm_count(),
                            s.procs_used()
                        );
                        if m == 8 && label == "R-LTF" {
                            print!("{}", s.describe(&g, &p));
                        }
                    }
                    Err(e) => println!("  {label} m={m:<2}: fails — {}", e.error),
                }
            }
        }
        println!();
    }
    println!(
        "paper (on its original graph): R-LTF m=8 → S=3, L=100;\n\
         LTF m=8 fails; LTF m=10 → S=4, L=140."
    );
}
