//! The paper's §1 motivating example (Fig. 1): the same four-task diamond
//! executed with task parallelism, data parallelism, and pipelining.
//!
//! ```text
//! cargo run --release --example motivating_example
//! ```

use ltf_sched::baselines::{data_parallel, task_parallel};
use ltf_sched::core::{AlgoConfig, Solver};
use ltf_sched::graph::dot::to_dot;
use ltf_sched::graph::generate::fig1_diamond;
use ltf_sched::platform::Platform;

fn main() {
    let g = fig1_diamond();
    let p = Platform::fig1_platform();
    println!("workflow (Graphviz):\n{}", to_dot(&g));

    // (b) Task parallelism: list-schedule the DAG per data set, repeat
    // serially; ε = 1 gives two mirror lanes {P1,P2} / {P3,P4}.
    let tp = task_parallel(&g, &p, 1);
    println!(
        "(b) task parallelism : L = {:>5.1}  T = 1/{:.1}   (paper: L = 39, T = 1/39)",
        tp.latency,
        1.0 / tp.throughput
    );

    // (c) Data parallelism: the whole graph per processor, items dealt
    // round-robin to the two replica groups.
    let dp = data_parallel(&g, &p, 1);
    println!(
        "(c) data parallelism : L = {:>5.1}  T = 1/{:.1}   (paper: T = 2/40 = 1/20)",
        dp.latency,
        1.0 / dp.throughput_optimistic
    );

    // (d) Pipelined execution at the paper's period 30: stages {t1,t3} on
    // a fast processor, {t2,t4} on a slow one.
    let cfg = AlgoConfig::new(1, 30.0);
    let solver = Solver::builtin(&g, &p);
    let s = solver
        .solve("rltf", &cfg)
        .expect("pipelined mapping")
        .into_schedule();
    println!(
        "(d) pipelined        : L = {:>5.1}  T = 1/{:.1}  S = {} (paper: L = 90, T = 1/30, S = 2)",
        s.latency_upper_bound(),
        s.period(),
        s.num_stages()
    );
    print!("\n{}", s.describe(&g, &p));

    println!(
        "\nThe trade-off the paper builds on: task parallelism gives the best\n\
         single-item latency but the worst throughput; data parallelism the\n\
         best throughput but needs independent items; pipelining balances\n\
         both and works for dependent streams."
    );
}
