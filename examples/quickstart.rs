//! Quickstart: build a workflow, schedule it fault-tolerantly, inspect the
//! result, and verify it survives any single processor crash.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ltf_sched::core::{ltf_schedule, rltf_schedule, AlgoConfig};
use ltf_sched::graph::GraphBuilder;
use ltf_sched::platform::Platform;
use ltf_sched::schedule::{failures, validate, CrashSet};

fn main() {
    // A small image-processing workflow: two parallel filter chains that
    // are fused and written out.
    let mut b = GraphBuilder::new();
    let decode = b.add_named_task("decode", 6.0);
    let denoise = b.add_named_task("denoise", 8.0);
    let edges_f = b.add_named_task("edges", 7.0);
    let fuse = b.add_named_task("fuse", 5.0);
    let encode = b.add_named_task("encode", 9.0);
    b.add_edge(decode, denoise, 2.0);
    b.add_edge(decode, edges_f, 2.0);
    b.add_edge(denoise, fuse, 1.5);
    b.add_edge(edges_f, fuse, 1.5);
    b.add_edge(fuse, encode, 1.0);
    let g = b.build().expect("acyclic workflow");

    // Six processors, two fast; all links with unit delay 0.4.
    let p = Platform::from_parts(vec![2.0, 2.0, 1.0, 1.0, 1.0, 1.0], {
        let m = 6;
        let mut d = vec![0.4; m * m];
        for u in 0..m {
            d[u * m + u] = 0.0;
        }
        d
    });

    // Tolerate one crash (ε = 1) while emitting a frame every 12 units.
    let cfg = AlgoConfig::with_throughput(1, 1.0 / 12.0);

    println!("=== R-LTF (latency-optimized) ===");
    let sched = rltf_schedule(&g, &p, &cfg).expect("R-LTF finds a schedule");
    validate(&g, &p, &sched).expect("schedule passes the validator");
    print!("{}", sched.describe(&g, &p));
    println!(
        "guaranteed latency {:.1}; survives every single crash: {}\n",
        sched.latency_upper_bound(),
        failures::tolerates_all_crashes(&g, &sched, p.num_procs(), 1),
    );

    println!("=== LTF (finish-time greedy) ===");
    match ltf_schedule(&g, &p, &cfg) {
        Ok(s) => {
            validate(&g, &p, &s).expect("schedule passes the validator");
            print!("{}", s.describe(&g, &p));
            println!("guaranteed latency {:.1}\n", s.latency_upper_bound());
        }
        Err(e) => println!("LTF failed: {e}\n"),
    }

    // What would one crash do to the delivered latency?
    let l0 = failures::effective_latency(&g, &sched, &CrashSet::empty(6)).unwrap();
    println!("R-LTF effective latency, no failures : {l0:.1}");
    for victim in p.procs() {
        let crash = CrashSet::from_procs(&[victim], 6);
        if let Some(l) = failures::effective_latency(&g, &sched, &crash) {
            println!("R-LTF effective latency, {victim} down: {l:.1}");
        }
    }
}
