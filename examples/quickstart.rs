//! Quickstart for the `Solver` API: build a workflow, solve it with the
//! paper's heuristics *and* a baseline by name, print the typed
//! `Solution` reports (text + JSON), and see what the typed
//! `Diagnostics` say when a request is infeasible.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ltf_sched::baselines::full_solver;
use ltf_sched::core::AlgoConfig;
use ltf_sched::graph::GraphBuilder;
use ltf_sched::platform::Platform;
use ltf_sched::schedule::{failures, validate, CrashSet};

fn main() {
    // 1. Build a small image-processing workflow: two parallel filter
    //    chains that are fused and written out.
    let mut b = GraphBuilder::new();
    let decode = b.add_named_task("decode", 6.0);
    let denoise = b.add_named_task("denoise", 8.0);
    let edges_f = b.add_named_task("edges", 7.0);
    let fuse = b.add_named_task("fuse", 5.0);
    let encode = b.add_named_task("encode", 9.0);
    b.add_edge(decode, denoise, 2.0);
    b.add_edge(decode, edges_f, 2.0);
    b.add_edge(denoise, fuse, 1.5);
    b.add_edge(edges_f, fuse, 1.5);
    b.add_edge(fuse, encode, 1.0);
    let g = b.build().expect("acyclic workflow");

    // 2. Six processors, two fast; all links with unit delay 0.4.
    let p = Platform::from_parts(vec![2.0, 2.0, 1.0, 1.0, 1.0, 1.0], {
        let m = 6;
        let mut d = vec![0.4; m * m];
        for u in 0..m {
            d[u * m + u] = 0.0;
        }
        d
    });

    // 3. One Solver session: the paper's heuristics (ltf, rltf,
    //    fault-free) plus every baseline, dispatchable by name.
    let solver = full_solver(&g, &p);
    println!("registered heuristics: {}\n", solver.names().join(", "));

    // 4. Tolerate one crash (ε = 1) while emitting a frame every 12 units.
    let cfg = AlgoConfig::with_throughput(1, 1.0 / 12.0);
    for name in ["rltf", "ltf"] {
        match solver.solve(name, &cfg) {
            Ok(sol) => {
                validate(&g, &p, &sol.schedule).expect("schedule passes the validator");
                println!("{sol}");
                print!("{}", sol.schedule.describe(&g, &p));
                println!(
                    "survives every single crash: {}\n",
                    failures::tolerates_all_crashes(&g, &sol.schedule, p.num_procs(), 1),
                );
            }
            Err(diag) => println!("{diag}\n"),
        }
    }

    // 5. Baselines speak the same language — HEFT needs ε = 0; at the
    //    same frame period its makespan mapping fits condition (1) too.
    let cfg0 = AlgoConfig::with_throughput(0, 1.0 / 12.0);
    let heft = solver.solve("heft", &cfg0).expect("HEFT fits Δ = 12");
    validate(&g, &p, &heft.schedule).expect("valid");
    println!("{heft}");

    // 6. Typed diagnostics: ask HEFT for replication and it refuses with
    //    a structured error instead of a panic or a bare bool.
    let diag = solver.solve("heft", &cfg).unwrap_err();
    println!("expected refusal: {diag}");

    // 7. Solution reports serialize — this is what `ltf-experiments
    //    solve --json` emits.
    let rltf = solver.solve("rltf", &cfg).expect("feasible");
    println!(
        "\nJSON report:\n{}",
        serde_json::to_string_pretty(&rltf).expect("serializable")
    );

    // 8. What would one crash do to the delivered latency?
    let sched = &rltf.schedule;
    let l0 = failures::effective_latency(&g, sched, &CrashSet::empty(6)).unwrap();
    println!("\nR-LTF effective latency, no failures : {l0:.1}");
    for victim in p.procs() {
        let crash = CrashSet::from_procs(&[victim], 6);
        if let Some(l) = failures::effective_latency(&g, sched, &crash) {
            println!("R-LTF effective latency, {victim} down: {l:.1}");
        }
    }
}
