//! The conclusion's "symmetric problems" in action: instead of fixing the
//! throughput and minimizing latency, search the objective space —
//! maximum throughput under a latency budget, maximum supported failures,
//! and the smallest platform that still works.
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use ltf_sched::core::search::{max_epsilon, min_period, min_processors, SearchOptions};
use ltf_sched::core::Rltf;
use ltf_sched::graph::generate::{layered, LayeredConfig};
use ltf_sched::platform::HeterogeneousConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let g = layered(
        &LayeredConfig {
            tasks: 40,
            exec_range: (1.0, 3.0),
            volume_range: (0.5, 2.0),
            ..Default::default()
        },
        &mut rng,
    );
    let p = HeterogeneousConfig {
        procs: 12,
        ..Default::default()
    }
    .build(&mut rng);
    println!(
        "workload: {} tasks, {} edges on {} processors\n",
        g.num_tasks(),
        g.num_edges(),
        p.num_procs()
    );

    // 1. Maximum throughput (no latency budget) with ε = 1.
    let opts = SearchOptions {
        epsilon: 1,
        ..Default::default()
    };
    let (best_period, sched) = min_period(&g, &p, &Rltf, &opts).expect("some period is feasible");
    println!(
        "max throughput (ε=1)          : T = 1/{best_period:.2}  → S = {}, L = {:.1}",
        sched.num_stages(),
        sched.latency_upper_bound()
    );

    // 2. Maximum throughput under a latency budget of 8 periods.
    let budget = 8.0 * best_period;
    let opts_budget = SearchOptions {
        max_latency: Some(budget),
        ..opts.clone()
    };
    if let Some((period, sched)) = min_period(&g, &p, &Rltf, &opts_budget) {
        println!(
            "max throughput, L ≤ {budget:<6.1}   : T = 1/{period:.2}  → S = {}, L = {:.1}",
            sched.num_stages(),
            sched.latency_upper_bound()
        );
    }

    // 3. Maximum number of supported failures at a relaxed period.
    let relaxed = 2.5 * best_period;
    if let Some((eps, sched)) = max_epsilon(&g, &p, &Rltf, relaxed, None, 1) {
        println!(
            "max failures at Δ = {relaxed:<8.2}: ε = {eps}     → S = {}, L = {:.1}",
            sched.num_stages(),
            sched.latency_upper_bound()
        );
    }

    // 4. Smallest platform prefix that still schedules ε = 1 at Δ = 2·best.
    let period = 2.0 * best_period;
    if let Some((m, sched)) = min_processors(&g, &p, &Rltf, 1, period, 1) {
        println!(
            "min processors at Δ = {period:<6.2}: m = {m}     → S = {}, L = {:.1}",
            sched.num_stages(),
            sched.latency_upper_bound()
        );
    }
}
