//! A realistic streaming scenario: a 1080p video analytics pipeline with
//! branch-heavy structure, scheduled fault-tolerantly and then *executed*
//! in the discrete-event simulator — including a mid-stream crash drill.
//!
//! ```text
//! cargo run --release --example video_pipeline
//! ```

use ltf_sched::core::{AlgoConfig, Solver};
use ltf_sched::graph::{GraphBuilder, TaskGraph};
use ltf_sched::platform::Platform;
use ltf_sched::schedule::{validate, CrashSet};
use ltf_sched::sim::{asap, synchronous, AsapConfig, SynchronousConfig};

/// Decode → {object detection, optical flow, color histogram} → tracker →
/// {annotate, index} → mux. Times in milliseconds per frame (exec) and
/// megabytes per frame (volumes).
fn video_graph() -> TaskGraph {
    let mut b = GraphBuilder::new();
    let decode = b.add_named_task("decode", 8.0);
    let detect = b.add_named_task("detect", 14.0);
    let flow = b.add_named_task("optflow", 11.0);
    let hist = b.add_named_task("histogram", 4.0);
    let track = b.add_named_task("track", 9.0);
    let annotate = b.add_named_task("annotate", 6.0);
    let index = b.add_named_task("index", 3.0);
    let mux = b.add_named_task("mux", 5.0);
    b.add_edge(decode, detect, 6.0);
    b.add_edge(decode, flow, 6.0);
    b.add_edge(decode, hist, 6.0);
    b.add_edge(detect, track, 1.0);
    b.add_edge(flow, track, 1.0);
    b.add_edge(track, annotate, 0.5);
    b.add_edge(track, index, 0.5);
    b.add_edge(hist, index, 0.2);
    b.add_edge(annotate, mux, 2.0);
    b.add_edge(index, mux, 0.2);
    b.build().expect("acyclic pipeline")
}

fn main() {
    let g = video_graph();
    // An edge cluster: two big cores, six efficiency cores; 1 ms/MB links.
    let speeds = vec![2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
    let m = speeds.len();
    let mut delays = vec![1.0; m * m];
    for u in 0..m {
        delays[u * m + u] = 0.0;
    }
    let p = Platform::from_parts(speeds, delays);

    // 30 fps with one-crash tolerance: period 33.3 ms, ε = 1.
    let cfg = AlgoConfig::with_throughput(1, 30.0 / 1000.0);
    let sched = Solver::builtin(&g, &p)
        .solve("rltf", &cfg)
        .expect("pipeline schedulable at 30 fps")
        .into_schedule();
    validate(&g, &p, &sched).expect("valid schedule");
    println!("{}", sched.describe(&g, &p));

    // Execute 300 frames (10 s of video).
    let run = synchronous(&g, &sched, &SynchronousConfig::new(300));
    println!(
        "synchronous model : {} frames, per-frame latency {:.1} ms, period {:.1} ms",
        run.produced(),
        run.mean_latency().unwrap(),
        run.achieved_period().unwrap()
    );
    let run = asap(&g, &sched, &AsapConfig::new(300));
    println!(
        "ASAP execution    : {} frames, mean latency {:.1} ms (max {:.1} ms)",
        run.produced(),
        run.mean_latency().unwrap(),
        run.max_latency().unwrap()
    );

    // Crash drill: the busiest processor dies 3 seconds in.
    let victim = p
        .procs()
        .max_by(|a, b| sched.sigma(*a).partial_cmp(&sched.sigma(*b)).unwrap())
        .unwrap();
    let crash = CrashSet::from_procs(&[victim], m);
    let run = asap(&g, &sched, &AsapConfig::with_crash(300, crash, 3000.0));
    println!(
        "crash drill       : {victim} dies at t=3000 ms → {} frames delivered, {} lost, mean latency {:.1} ms",
        run.produced(),
        run.lost(),
        run.mean_latency().unwrap()
    );
    assert_eq!(run.lost(), 0, "ε = 1 must mask a single crash");
    println!("single-processor crash fully masked by the replication ✓");
}
